package coordinator

import (
	"errors"
	"testing"
	"time"

	"alpenhorn/internal/wire"
)

// stubMixer is a controllable in-memory daemon for scheduler tests: it
// exposes an address (so the scheduler scores it) and a flippable
// liveness bit (so plan-time probes can be made to fail).
type stubMixer struct {
	addr  string
	alive bool
}

func (m *stubMixer) NewRound(wire.Service, uint32) (wire.MixerRoundKey, error) {
	return wire.MixerRoundKey{}, nil
}
func (m *stubMixer) SetDownstreamKeys(wire.Service, uint32, [][]byte) error { return nil }
func (m *stubMixer) Mix(wire.Service, uint32, uint32, [][]byte) ([][]byte, error) {
	return nil, nil
}
func (m *stubMixer) CloseRound(wire.Service, uint32)                 {}
func (m *stubMixer) NoiseMu(wire.Service) float64                    { return 0 }
func (m *stubMixer) Addr() string                                    { return m.addr }
func (m *stubMixer) SupportsForwarding() bool                        { return true }
func (m *stubMixer) OpenRoute(wire.Service, uint32, RouteSpec) error { return nil }
func (m *stubMixer) WaitRound(wire.Service, uint32) (wire.MixerRoundStats, error) {
	return wire.MixerRoundStats{}, nil
}
func (m *stubMixer) AbortRound(wire.Service, uint32, string) error { return nil }
func (m *stubMixer) Probe() error {
	if m.alive {
		return nil
	}
	return errors.New("stub daemon is down")
}

func TestBenchReason(t *testing.T) {
	slo := 100 * time.Millisecond
	cases := []struct {
		name string
		d    DaemonRoundStats
		slo  time.Duration
		want string
	}{
		{"success", DaemonRoundStats{}, 0, ""},
		{"success under SLO", DaemonRoundStats{Stats: wire.MixerRoundStats{Duration: 50 * time.Millisecond}}, slo, ""},
		{"success over SLO", DaemonRoundStats{Stats: wire.MixerRoundStats{Duration: 200 * time.Millisecond}}, slo, wire.AbortSlow},
		{"unreachable daemon", DaemonRoundStats{Err: "wait: connection refused"}, 0, wire.AbortCrashed},
		{"upstream abort keeps seat", DaemonRoundStats{Err: "aborted: upstream died", Stats: wire.MixerRoundStats{AbortReason: wire.AbortUpstream}}, 0, ""},
		{"own fault", DaemonRoundStats{Err: "mix failed", Stats: wire.MixerRoundStats{AbortReason: wire.AbortError}}, 0, wire.AbortError},
		{"deadline", DaemonRoundStats{Err: "round deadline exceeded", Stats: wire.MixerRoundStats{AbortReason: wire.AbortSlow}}, 0, wire.AbortSlow},
	}
	for _, tc := range cases {
		if got := benchReason(tc.d, tc.slo); got != tc.want {
			t.Errorf("%s: benchReason = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestAdaptChunkWindow(t *testing.T) {
	c := &Coordinator{ChunkSize: 64, AdaptiveChunk: true}

	// Failures halve the chunk but never push it under base/4.
	for i := 0; i < 5; i++ {
		c.adaptChunk(RoundHealth{Service: wire.Dialing, Forwarded: true, Err: "boom"})
	}
	if got := c.currentChunk(wire.Dialing); got != 16 {
		t.Errorf("after repeated failures chunk = %d, want floor 16", got)
	}

	// Clean rounds grow it geometrically but never past base*4.
	for i := 0; i < 40; i++ {
		c.adaptChunk(RoundHealth{Service: wire.Dialing, Forwarded: true})
	}
	if got := c.currentChunk(wire.Dialing); got != 256 {
		t.Errorf("after repeated clean rounds chunk = %d, want ceiling 256", got)
	}

	// An SLO breach counts as slow even when the round succeeded.
	c.LatencySLO = time.Millisecond
	c.adaptChunk(RoundHealth{Service: wire.Dialing, Forwarded: true, Daemons: []DaemonRoundStats{
		{Stats: wire.MixerRoundStats{Duration: 50 * time.Millisecond}},
	}})
	if got := c.currentChunk(wire.Dialing); got != 128 {
		t.Errorf("after SLO breach chunk = %d, want 128", got)
	}

	// Non-forwarded and AddFriend rounds leave Dialing's state alone.
	c.adaptChunk(RoundHealth{Service: wire.Dialing, Forwarded: false, Err: "boom"})
	c.adaptChunk(RoundHealth{Service: wire.AddFriend, Forwarded: true, Err: "boom"})
	if got := c.currentChunk(wire.Dialing); got != 128 {
		t.Errorf("unrelated rounds moved the chunk to %d, want 128", got)
	}

	// With AdaptiveChunk off, rounds always plan the configured base.
	c.AdaptiveChunk = false
	if got := c.currentChunk(wire.Dialing); got != 64 {
		t.Errorf("with AdaptiveChunk off chunk = %d, want base 64", got)
	}
}

// newStubCoordinator builds a coordinator over one position with a
// 3-member stub shard group and one stub spare.
func newStubCoordinator() (*Coordinator, []*stubMixer, *stubMixer) {
	members := []*stubMixer{
		{addr: "10.0.0.1:1", alive: true},
		{addr: "10.0.0.2:1", alive: true},
		{addr: "10.0.0.3:1", alive: true},
	}
	spare := &stubMixer{addr: "10.0.0.9:1", alive: true}
	c := &Coordinator{
		Mixers: []Mixer{members[0]},
		Shards: [][]Mixer{{members[1], members[2]}},
		Spares: [][]Mixer{{spare}},
	}
	return c, members, spare
}

func TestLeadRotation(t *testing.T) {
	c, _, _ := newStubCoordinator()
	for r := uint32(1); r <= 7; r++ {
		plan := c.planRound(wire.Dialing, r)
		if got, want := plan.lead(0), int(r%3); got != want {
			t.Errorf("round %d: lead %d, want %d", r, got, want)
		}
		if got := len(plan.peers[0]); got != 3 {
			t.Errorf("round %d: %d peers in shard network, want 3", r, got)
		}
		c.dropPlan(wire.Dialing, r)
	}

	c.PinLead = true
	plan := c.planRound(wire.Dialing, 5)
	if got := plan.lead(0); got != 0 {
		t.Errorf("PinLead: lead %d, want 0", got)
	}
	c.dropPlan(wire.Dialing, 5)

	// Fallback plans (rounds never opened here) pin the lead too.
	if got := c.planFor(wire.Dialing, 99).lead(0); got != 0 {
		t.Errorf("fallback plan: lead %d, want 0", got)
	}
}

func TestBenchDraftAndReadmit(t *testing.T) {
	c, members, spare := newStubCoordinator()
	victim := members[2] // pos 0, shard slot 2

	// Round 1: the victim is down at plan time — benched, spare drafted
	// into its exact slot.
	victim.alive = false
	plan := c.planRound(wire.Dialing, 1)
	if got := plan.group(0)[2]; got != Mixer(spare) {
		t.Fatalf("round 1: slot 2 holds %v, want the drafted spare", got)
	}
	if plan.peers[0][2] != spare.addr {
		t.Errorf("round 1: shard network lists %s at slot 2, want spare %s", plan.peers[0][2], spare.addr)
	}

	// Round 2 overlaps round 1: the single spare is already committed,
	// so the benched victim keeps its slot (and the round rides on it).
	plan2 := c.planRound(wire.Dialing, 2)
	if got := plan2.group(0)[2]; got != Mixer(victim) {
		t.Errorf("round 2: slot 2 holds %v, want the benched victim (spare pool exhausted)", got)
	}
	c.dropPlan(wire.Dialing, 1)
	c.dropPlan(wire.Dialing, 2)

	// The victim restarts. Cooldown: one round of distance from the
	// bench round is required even with a healthy probe.
	victim.alive = true
	plan = c.planRound(wire.Dialing, 2)
	if got := plan.group(0)[2]; got != Mixer(spare) {
		t.Errorf("cooldown round: slot 2 holds %v, want the spare", got)
	}
	c.dropPlan(wire.Dialing, 2)

	// Past the cooldown it is re-admitted automatically.
	plan = c.planRound(wire.Dialing, 3)
	if got := plan.group(0)[2]; got != Mixer(victim) {
		t.Fatalf("round 3: slot 2 holds %v, want the re-admitted victim", got)
	}
	c.dropPlan(wire.Dialing, 3)

	sb := c.Scoreboard()
	var vs, ss *DaemonScore
	for i := range sb.Daemons {
		switch sb.Daemons[i].Addr {
		case victim.addr:
			vs = &sb.Daemons[i]
		case spare.addr:
			ss = &sb.Daemons[i]
		}
	}
	if vs == nil || vs.Benched || vs.Readmissions != 1 {
		t.Errorf("victim scoreboard = %+v, want un-benched with 1 readmission", vs)
	}
	if ss == nil || !ss.Spare {
		t.Errorf("spare scoreboard = %+v, want Spare flag", ss)
	}
}

func TestAnnouncerNeverSubstituted(t *testing.T) {
	c, members, _ := newStubCoordinator()
	members[0].alive = false
	plan := c.planRound(wire.Dialing, 1)
	if got := plan.group(0)[0]; got != Mixer(members[0]) {
		t.Fatalf("slot 0 holds %v, want the (benched) announcer: clients pin its key", got)
	}
	c.dropPlan(wire.Dialing, 1)
}

func TestUpdateScoreboardOwnFaultOnly(t *testing.T) {
	c := &Coordinator{}
	h := RoundHealth{Service: wire.Dialing, Round: 3, Daemons: []DaemonRoundStats{
		{Position: 0, Shard: 0, Addr: "a:1", Stats: wire.MixerRoundStats{
			Duration: 80 * time.Millisecond, BytesIn: 1 << 20, BytesOut: 1 << 20,
		}},
		{Position: 0, Shard: 1, Addr: "b:1", Err: "aborted: upstream died",
			Stats: wire.MixerRoundStats{AbortReason: wire.AbortUpstream}},
		{Position: 1, Shard: 0, Addr: "c:1", Err: "wait: connection refused"},
	}}
	c.updateScoreboard(h)

	byAddr := map[string]DaemonScore{}
	for _, d := range c.Scoreboard().Daemons {
		byAddr[d.Addr] = d
	}
	if d := byAddr["a:1"]; d.Benched || d.Failures != 0 || d.EWMADurationMs != 80 || d.EWMAThroughputKBs == 0 {
		t.Errorf("healthy daemon score = %+v, want clean EWMAs", d)
	}
	if d := byAddr["b:1"]; d.Benched || d.Failures != 0 || d.Aborts[wire.AbortUpstream] != 1 {
		t.Errorf("upstream-abort daemon score = %+v, want seat kept with upstream abort counted", d)
	}
	if d := byAddr["c:1"]; !d.Benched || d.BenchedRound != 3 || d.Aborts[wire.AbortCrashed] != 1 {
		t.Errorf("unreachable daemon score = %+v, want benched at round 3 as crashed", d)
	}
}

func TestHealthRingSize(t *testing.T) {
	c := &Coordinator{}
	for r := uint32(1); r <= 100; r++ {
		c.recordHealth(RoundHealth{Service: wire.Dialing, Round: r})
	}
	if got := len(c.Status()); got != defaultHealthRing {
		t.Errorf("default ring kept %d records, want %d", got, defaultHealthRing)
	}

	c = &Coordinator{HealthRing: 8}
	for r := uint32(1); r <= 100; r++ {
		c.recordHealth(RoundHealth{Service: wire.Dialing, Round: r})
	}
	if got := len(c.Status()); got != 8 {
		t.Errorf("HealthRing=8 kept %d records, want 8", got)
	}
	if got := c.Status()[7].Round; got != 100 {
		t.Errorf("ring tail holds round %d, want the newest round 100", got)
	}
}
