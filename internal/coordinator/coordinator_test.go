package coordinator

import (
	"crypto/rand"
	"testing"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/cdn"
	emailpkg "alpenhorn/internal/email"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

func newTestCoordinator(t *testing.T, numMixers, numPKGs int) *Coordinator {
	t.Helper()
	provider := emailpkg.NewInMemoryProvider()
	var pkgs []*pkgserver.Server
	for i := 0; i < numPKGs; i++ {
		p, err := pkgserver.New(pkgserver.Config{Name: "p", Provider: provider})
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	nz := noise.Laplace{Mu: 1, B: 0}
	var mixers []*mixnet.Server
	for i := 0; i < numMixers; i++ {
		m, err := mixnet.New(mixnet.Config{
			Name: "m", Position: i, ChainLength: numMixers,
			AddFriendNoise: &nz, DialingNoise: &nz,
		})
		if err != nil {
			t.Fatal(err)
		}
		mixers = append(mixers, m)
	}
	return New(entry.New(), mixers, pkgs, cdn.NewStore(0))
}

func TestAddFriendRoundLifecycle(t *testing.T) {
	c := newTestCoordinator(t, 3, 2)
	settings, err := c.OpenAddFriendRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(settings.Mixers) != 3 || len(settings.PKGs) != 2 {
		t.Fatalf("settings: %d mixers, %d PKGs", len(settings.Mixers), len(settings.PKGs))
	}
	// Settings are served by the entry server.
	got, err := c.Entry.Settings(wire.AddFriend, 1)
	if err != nil || got.NumMailboxes != settings.NumMailboxes {
		t.Fatal("entry does not serve settings")
	}

	mailboxes, err := c.CloseRound(wire.AddFriend, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mailboxes) != int(settings.NumMailboxes) {
		t.Fatalf("%d mailboxes, want %d", len(mailboxes), settings.NumMailboxes)
	}
	if !c.CDN.Published(wire.AddFriend, 1) {
		t.Fatal("mailboxes not published")
	}
	// Mixer round keys erased. PKG master keys are erased concurrently
	// with the mix (extraction only happens during the submission
	// window), so they are gone by the time CloseRound returns.
	for _, m := range c.Mixers {
		if m.(*mixnet.Server).RoundOpen(wire.AddFriend, 1) {
			t.Fatal("mixer round key survives close")
		}
	}
	for _, p := range c.PKGs {
		if p.(*pkgserver.Server).RoundOpen(1) {
			t.Fatal("PKG round key survives close")
		}
	}
	// The explicit finish hook stays idempotent.
	c.FinishAddFriendRound(1)
	for _, p := range c.PKGs {
		if p.(*pkgserver.Server).RoundOpen(1) {
			t.Fatal("PKG round open after finish")
		}
	}
}

// TestFinishBeforeCloseStillErases: a driver that opens an add-friend
// round but aborts before CloseRound can still erase the PKG keys with
// the explicit hook.
func TestFinishBeforeCloseStillErases(t *testing.T) {
	c := newTestCoordinator(t, 1, 2)
	if _, err := c.OpenAddFriendRound(7); err != nil {
		t.Fatal(err)
	}
	c.FinishAddFriendRound(7)
	for _, p := range c.PKGs {
		if p.(*pkgserver.Server).RoundOpen(7) {
			t.Fatal("PKG round open after explicit finish")
		}
	}
}

func TestDialingRoundLifecycle(t *testing.T) {
	c := newTestCoordinator(t, 2, 1)
	settings, err := c.OpenDialingRound(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(settings.PKGs) != 0 {
		t.Fatal("dialing settings should have no PKG keys")
	}
	mailboxes, err := c.CloseRound(wire.Dialing, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every mailbox is a valid Bloom filter.
	for id, data := range mailboxes {
		if _, err := bloom.Unmarshal(data); err != nil {
			t.Fatalf("mailbox %d: %v", id, err)
		}
	}
}

func TestMailboxCountScalesWithVolume(t *testing.T) {
	c := newTestCoordinator(t, 3, 1)
	c.TargetRequestsPerMailbox = 10 // noise = 3 servers × 1 = 3/mailbox

	c.SetExpectedVolume(wire.Dialing, 0)
	s1, err := c.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumMailboxes != 1 {
		t.Fatalf("empty volume: K = %d, want 1", s1.NumMailboxes)
	}
	if _, err := c.CloseRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}

	c.SetExpectedVolume(wire.Dialing, 700)
	s2, err := c.OpenDialingRound(2)
	if err != nil {
		t.Fatal(err)
	}
	// realPerMailbox target = 10 − 3 = 7 → K = 700/7 = 100.
	if s2.NumMailboxes != 100 {
		t.Fatalf("high volume: K = %d, want 100", s2.NumMailboxes)
	}
}

func TestCloseUnopenedRoundFails(t *testing.T) {
	c := newTestCoordinator(t, 1, 1)
	if _, err := c.CloseRound(wire.Dialing, 42); err == nil {
		t.Fatal("closing unopened round succeeded")
	}
}

// submitDialTokens wraps one dial onion per token, addressed round-robin to
// the round's mailboxes, and submits them to the entry server.
func submitDialTokens(t *testing.T, c *Coordinator, settings *wire.RoundSettings, tokens [][]byte) {
	t.Helper()
	hops := make([]*onionbox.PublicKey, len(settings.Mixers))
	for i, rk := range settings.Mixers {
		pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
		if err != nil {
			t.Fatal(err)
		}
		hops[i] = pk
	}
	for i, tok := range tokens {
		payload := (&wire.MixPayload{Mailbox: uint32(i) % settings.NumMailboxes, Body: tok}).Marshal()
		onion, err := onionbox.WrapOnion(rand.Reader, hops, payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Entry.Submit(settings.Service, settings.Round, onion); err != nil {
			t.Fatal(err)
		}
	}
}

func makeTokens(n int) [][]byte {
	tokens := make([][]byte, n)
	for i := range tokens {
		tok := make([]byte, keywheel.TokenSize)
		tok[0], tok[1], tok[2] = byte(i), byte(i>>8), 0xCD
		tokens[i] = tok
	}
	return tokens
}

// TestPipelinedRoundDeliversTokens runs a full dialing round through the
// streaming pipeline (small chunks, so every server sees multiple chunks)
// and through the sequential full-batch path, checking both deliver every
// token to its mailbox.
func TestPipelinedRoundDeliversTokens(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		c := newTestCoordinator(t, 3, 0)
		c.ChunkSize = 16
		c.Sequential = sequential
		c.TargetRequestsPerMailbox = 40
		c.SetExpectedVolume(wire.Dialing, 120)

		settings, err := c.OpenDialingRound(1)
		if err != nil {
			t.Fatal(err)
		}
		if settings.NumMailboxes < 2 {
			t.Fatalf("want a multi-mailbox round, got K=%d", settings.NumMailboxes)
		}
		tokens := makeTokens(120)
		submitDialTokens(t, c, settings, tokens)

		mailboxes, err := c.CloseRound(wire.Dialing, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i, tok := range tokens {
			mb := uint32(i) % settings.NumMailboxes
			f, err := bloom.Unmarshal(mailboxes[mb])
			if err != nil {
				t.Fatal(err)
			}
			if !f.Test(tok) {
				t.Fatalf("sequential=%v: token %d missing from mailbox %d", sequential, i, mb)
			}
		}
		if !c.CDN.Published(wire.Dialing, 1) {
			t.Fatal("round not published")
		}
	}
}

// legacyMixer wraps a *mixnet.Server but reports no streaming support, the
// coordinator's view of a daemon built before the streaming RPC surface.
// Any use of the streaming methods fails the test.
type legacyMixer struct {
	*mixnet.Server
	t *testing.T
}

func (l *legacyMixer) SupportsStreaming() bool { return false }

func (l *legacyMixer) PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error {
	l.t.Error("PrepareNoise called on a mixer that does not support it")
	return nil
}

func (l *legacyMixer) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	l.t.Error("StreamBegin called on a mixer that does not support it")
	return nil
}

// TestLegacyMixerFallsBackToFullBatch: a mixer that reports no streaming
// support must be driven through full-batch Mix only — the rolling-upgrade
// path where the coordinator is newer than a mixer daemon.
func TestLegacyMixerFallsBackToFullBatch(t *testing.T) {
	c := newTestCoordinator(t, 2, 0)
	c.Mixers[0] = &legacyMixer{Server: c.Mixers[0].(*mixnet.Server), t: t}
	c.TargetRequestsPerMailbox = 40
	c.SetExpectedVolume(wire.Dialing, 60)

	settings, err := c.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	tokens := makeTokens(60)
	submitDialTokens(t, c, settings, tokens)
	mailboxes, err := c.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, tok := range tokens {
		mb := uint32(i) % settings.NumMailboxes
		f, err := bloom.Unmarshal(mailboxes[mb])
		if err != nil {
			t.Fatal(err)
		}
		if !f.Test(tok) {
			t.Fatalf("token %d missing from mailbox %d", i, mb)
		}
	}
}

// TestNumMailboxesNoiseExceedsTarget: when per-mailbox noise alone meets or
// exceeds the target, splitting mailboxes cannot help (each split adds its
// own noise), so the coordinator must fall back to a single mailbox no
// matter the expected volume.
func TestNumMailboxesNoiseExceedsTarget(t *testing.T) {
	c := newTestCoordinator(t, 3, 0) // 3 mixers × µ=1 → 3 noise/mailbox
	c.TargetRequestsPerMailbox = 3   // noise alone hits the target
	c.SetExpectedVolume(wire.Dialing, 1000000)
	if k := c.numMailboxes(wire.Dialing); k != 1 {
		t.Fatalf("noise ≥ target: K = %d, want 1", k)
	}
	c.TargetRequestsPerMailbox = 2 // noise exceeds the target
	if k := c.numMailboxes(wire.Dialing); k != 1 {
		t.Fatalf("noise > target: K = %d, want 1", k)
	}
}

// TestNumMailboxesZeroVolume: with no expected volume (a fresh deployment,
// or a service that saw an empty round), the coordinator opens exactly one
// mailbox rather than zero.
func TestNumMailboxesZeroVolume(t *testing.T) {
	c := newTestCoordinator(t, 2, 0)
	c.TargetRequestsPerMailbox = 100
	if k := c.numMailboxes(wire.Dialing); k != 1 {
		t.Fatalf("unseeded volume: K = %d, want 1", k)
	}
	c.SetExpectedVolume(wire.Dialing, 0)
	if k := c.numMailboxes(wire.Dialing); k != 1 {
		t.Fatalf("zero volume: K = %d, want 1", k)
	}
	// Volume below one mailbox's real capacity still rounds up to 1.
	c.SetExpectedVolume(wire.Dialing, 5)
	if k := c.numMailboxes(wire.Dialing); k != 1 {
		t.Fatalf("tiny volume: K = %d, want 1", k)
	}
}

// TestVolumeTrackingAcrossRounds: each CloseRound feeds the observed batch
// size back into the mailbox-count heuristic, so consecutive rounds track
// the actual load.
func TestVolumeTrackingAcrossRounds(t *testing.T) {
	c := newTestCoordinator(t, 2, 0) // 2 mixers × µ=1 → 2 noise/mailbox
	c.TargetRequestsPerMailbox = 12  // → 10 real requests per mailbox

	s1, err := c.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumMailboxes != 1 {
		t.Fatalf("round 1: K = %d, want 1 (no volume yet)", s1.NumMailboxes)
	}
	submitDialTokens(t, c, s1, makeTokens(200))
	if _, err := c.CloseRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}

	// Round 2 sizes from round 1's observed 200 requests: 200/10 = 20.
	s2, err := c.OpenDialingRound(2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumMailboxes != 20 {
		t.Fatalf("round 2: K = %d, want 20", s2.NumMailboxes)
	}
	submitDialTokens(t, c, s2, makeTokens(40))
	if _, err := c.CloseRound(wire.Dialing, 2); err != nil {
		t.Fatal(err)
	}

	// Round 3 shrinks with the observed volume: 40/10 = 4.
	s3, err := c.OpenDialingRound(3)
	if err != nil {
		t.Fatal(err)
	}
	if s3.NumMailboxes != 4 {
		t.Fatalf("round 3: K = %d, want 4", s3.NumMailboxes)
	}
	// The other service's volume estimate is independent.
	if k := c.numMailboxes(wire.AddFriend); k != 1 {
		t.Fatalf("add-friend volume leaked from dialing: K = %d, want 1", k)
	}
}

// TestRelayedRoundRecordsHealth: rounds on the coordinator-relayed data
// plane still land in Status() — without per-daemon stats, which only
// exist where mix.round.wait does.
func TestRelayedRoundRecordsHealth(t *testing.T) {
	c := newTestCoordinator(t, 2, 1)
	if _, err := c.OpenDialingRound(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CloseRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}
	health := c.Status()
	if len(health) != 1 {
		t.Fatalf("Status(): %d records, want 1", len(health))
	}
	h := health[0]
	if h.Forwarded || h.Service != wire.Dialing || h.Round != 1 || h.Err != "" || len(h.Daemons) != 0 {
		t.Fatalf("relayed health record: %+v", h)
	}
	if h.String() == "" {
		t.Fatal("health log line is empty")
	}
}

// TestShardedConfigRequiresCapableFleet: a coordinator configured with
// shard groups must refuse to open rounds over in-process mixers (no
// forwarding, no shard surface) instead of silently degrading — the
// shards would have divided the position's noise.
func TestShardedConfigRequiresCapableFleet(t *testing.T) {
	c := newTestCoordinator(t, 2, 1)
	nz := noise.Laplace{Mu: 1, B: 0}
	extra, err := mixnet.New(mixnet.Config{
		Name: "m", Position: 0, ChainLength: 2,
		AddFriendNoise: &nz, DialingNoise: &nz,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Shards = [][]Mixer{{extra}, nil}
	if _, err := c.OpenDialingRound(1); err == nil {
		t.Fatal("sharded round opened over a fleet that cannot forward")
	}
	c.ChainForward, c.CDNAddr = true, "127.0.0.1:1"
	if _, err := c.OpenDialingRound(2); err == nil {
		t.Fatal("sharded round opened over in-process mixers with no shard surface")
	}
}
