package coordinator

import (
	"testing"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/cdn"
	emailpkg "alpenhorn/internal/email"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

func newTestCoordinator(t *testing.T, numMixers, numPKGs int) *Coordinator {
	t.Helper()
	provider := emailpkg.NewInMemoryProvider()
	var pkgs []*pkgserver.Server
	for i := 0; i < numPKGs; i++ {
		p, err := pkgserver.New(pkgserver.Config{Name: "p", Provider: provider})
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	nz := noise.Laplace{Mu: 1, B: 0}
	var mixers []*mixnet.Server
	for i := 0; i < numMixers; i++ {
		m, err := mixnet.New(mixnet.Config{
			Name: "m", Position: i, ChainLength: numMixers,
			AddFriendNoise: &nz, DialingNoise: &nz,
		})
		if err != nil {
			t.Fatal(err)
		}
		mixers = append(mixers, m)
	}
	return New(entry.New(), mixers, pkgs, cdn.NewStore(0))
}

func TestAddFriendRoundLifecycle(t *testing.T) {
	c := newTestCoordinator(t, 3, 2)
	settings, err := c.OpenAddFriendRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(settings.Mixers) != 3 || len(settings.PKGs) != 2 {
		t.Fatalf("settings: %d mixers, %d PKGs", len(settings.Mixers), len(settings.PKGs))
	}
	// Settings are served by the entry server.
	got, err := c.Entry.Settings(wire.AddFriend, 1)
	if err != nil || got.NumMailboxes != settings.NumMailboxes {
		t.Fatal("entry does not serve settings")
	}

	mailboxes, err := c.CloseRound(wire.AddFriend, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mailboxes) != int(settings.NumMailboxes) {
		t.Fatalf("%d mailboxes, want %d", len(mailboxes), settings.NumMailboxes)
	}
	if !c.CDN.Published(wire.AddFriend, 1) {
		t.Fatal("mailboxes not published")
	}
	// Mixer round keys erased; PKG keys still open until Finish.
	for _, m := range c.Mixers {
		if m.(*mixnet.Server).RoundOpen(wire.AddFriend, 1) {
			t.Fatal("mixer round key survives close")
		}
	}
	for _, p := range c.PKGs {
		if !p.(*pkgserver.Server).RoundOpen(1) {
			t.Fatal("PKG round closed too early")
		}
	}
	c.FinishAddFriendRound(1)
	for _, p := range c.PKGs {
		if p.(*pkgserver.Server).RoundOpen(1) {
			t.Fatal("PKG round open after finish")
		}
	}
}

func TestDialingRoundLifecycle(t *testing.T) {
	c := newTestCoordinator(t, 2, 1)
	settings, err := c.OpenDialingRound(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(settings.PKGs) != 0 {
		t.Fatal("dialing settings should have no PKG keys")
	}
	mailboxes, err := c.CloseRound(wire.Dialing, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every mailbox is a valid Bloom filter.
	for id, data := range mailboxes {
		if _, err := bloom.Unmarshal(data); err != nil {
			t.Fatalf("mailbox %d: %v", id, err)
		}
	}
}

func TestMailboxCountScalesWithVolume(t *testing.T) {
	c := newTestCoordinator(t, 3, 1)
	c.TargetRequestsPerMailbox = 10 // noise = 3 servers × 1 = 3/mailbox

	c.SetExpectedVolume(wire.Dialing, 0)
	s1, err := c.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumMailboxes != 1 {
		t.Fatalf("empty volume: K = %d, want 1", s1.NumMailboxes)
	}
	if _, err := c.CloseRound(wire.Dialing, 1); err != nil {
		t.Fatal(err)
	}

	c.SetExpectedVolume(wire.Dialing, 700)
	s2, err := c.OpenDialingRound(2)
	if err != nil {
		t.Fatal(err)
	}
	// realPerMailbox target = 10 − 3 = 7 → K = 700/7 = 100.
	if s2.NumMailboxes != 100 {
		t.Fatalf("high volume: K = %d, want 100", s2.NumMailboxes)
	}
}

func TestCloseUnopenedRoundFails(t *testing.T) {
	c := newTestCoordinator(t, 1, 1)
	if _, err := c.CloseRound(wire.Dialing, 42); err == nil {
		t.Fatal("closing unopened round succeeded")
	}
}
