// Package coordinator drives Alpenhorn's periodic rounds (§3.1).
//
// The paper makes the first mixnet server coordinate rounds; this package
// factors that role into its own type so it can run inside the first
// mixer's process (as in the paper), as a standalone daemon, or — most
// importantly for reproducibility — under direct control of tests and
// benchmarks, which step rounds manually instead of on timers.
//
// One add-friend round proceeds as:
//
//  1. every PKG announces a fresh signed IBE master key,
//  2. every mixer announces a fresh signed onion key,
//  3. the coordinator picks the mailbox count, assembles the signed
//     RoundSettings, and opens the round at the entry server,
//  4. clients submit onions (real or cover),
//  5. the coordinator closes intake, runs the batch through the mix
//     chain, and publishes the resulting mailboxes to the CDN,
//  6. mixers erase their round keys immediately; PKGs erase master keys
//     once clients have had time to extract identity keys.
//
// Dialing rounds are the same minus the PKG steps.
package coordinator

import (
	"fmt"
	"sync"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// Mixer is the coordinator's view of one mixnet server. It is satisfied by
// *mixnet.Server (in-process) and *rpc.MixerClient (remote daemon).
type Mixer interface {
	NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error)
	SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error
	Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error)
	CloseRound(service wire.Service, round uint32)
	NoiseMu(service wire.Service) float64
}

// PKG is the coordinator's view of one PKG server. It is satisfied by
// *pkgserver.Server (in-process) and *rpc.PKGClient (remote daemon).
type PKG interface {
	NewRound(round uint32) (wire.PKGRoundKey, error)
	CloseRound(round uint32)
}

// Coordinator orchestrates rounds across the servers. It is safe for
// concurrent use, though rounds are typically driven sequentially.
type Coordinator struct {
	Entry  *entry.Server
	Mixers []Mixer
	PKGs   []PKG
	CDN    *cdn.Store

	// TargetRequestsPerMailbox controls how many requests (real + noise)
	// the coordinator aims to put in one mailbox; the paper sizes
	// add-friend mailboxes at roughly 24,000 requests (§8.2). Tests use
	// small values.
	TargetRequestsPerMailbox int

	// ExpectedVolume estimates the next round's request count for
	// mailbox sizing. Updated from each observed batch.
	mu             sync.Mutex
	expectedVolume map[wire.Service]int
}

// New creates a coordinator over in-process servers, the common case for
// tests and single-machine deployments. For remote daemons, construct the
// Coordinator literal with rpc.MixerClient / rpc.PKGClient values.
func New(e *entry.Server, mixers []*mixnet.Server, pkgs []*pkgserver.Server, store *cdn.Store) *Coordinator {
	c := &Coordinator{
		Entry:                    e,
		CDN:                      store,
		TargetRequestsPerMailbox: 24000,
		expectedVolume:           make(map[wire.Service]int),
	}
	for _, m := range mixers {
		c.Mixers = append(c.Mixers, m)
	}
	for _, p := range pkgs {
		c.PKGs = append(c.PKGs, p)
	}
	return c
}

// SetExpectedVolume seeds the mailbox-count heuristic (e.g. from the
// previous round's batch size).
func (c *Coordinator) SetExpectedVolume(service wire.Service, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.expectedVolume == nil {
		c.expectedVolume = make(map[wire.Service]int)
	}
	c.expectedVolume[service] = n
}

// numMailboxes picks K: enough mailboxes that each holds roughly
// TargetRequestsPerMailbox requests, counting per-mailbox noise from every
// mixer. The paper's balance point puts "a roughly equal amount of noise
// and real requests in each mailbox" (§6).
func (c *Coordinator) numMailboxes(service wire.Service) uint32 {
	c.mu.Lock()
	expected := c.expectedVolume[service]
	c.mu.Unlock()

	perMailboxNoise := 0.0
	for _, m := range c.Mixers {
		perMailboxNoise += m.NoiseMu(service)
	}
	target := float64(c.TargetRequestsPerMailbox)
	realPerMailbox := target - perMailboxNoise
	if realPerMailbox <= 0 {
		// Noise alone exceeds the target: use one mailbox.
		return 1
	}
	k := uint32(float64(expected) / realPerMailbox)
	if k < 1 {
		k = 1
	}
	return k
}

// OpenAddFriendRound performs steps 1-3: key announcements and settings.
func (c *Coordinator) OpenAddFriendRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.AddFriend,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.AddFriend),
	}
	for i, pkg := range c.PKGs {
		rk, err := pkg.NewRound(round)
		if err != nil {
			return nil, fmt.Errorf("coordinator: PKG %d: %w", i, err)
		}
		settings.PKGs = append(settings.PKGs, rk)
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.Entry.OpenRound(settings); err != nil {
		return nil, err
	}
	return settings, nil
}

// OpenDialingRound announces a dialing round.
func (c *Coordinator) OpenDialingRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.Dialing,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.Dialing),
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.Entry.OpenRound(settings); err != nil {
		return nil, err
	}
	return settings, nil
}

func (c *Coordinator) openMixRound(settings *wire.RoundSettings) error {
	keys := make([][]byte, len(c.Mixers))
	for i, m := range c.Mixers {
		rk, err := m.NewRound(settings.Service, settings.Round)
		if err != nil {
			return fmt.Errorf("coordinator: mixer %d: %w", i, err)
		}
		settings.Mixers = append(settings.Mixers, rk)
		keys[i] = rk.OnionKey
	}
	// Each mixer needs the onion keys of the servers after it to wrap
	// its noise.
	for i, m := range c.Mixers {
		if err := m.SetDownstreamKeys(settings.Service, settings.Round, keys[i+1:]); err != nil {
			return fmt.Errorf("coordinator: mixer %d downstream keys: %w", i, err)
		}
	}
	return nil
}

// CloseRound performs steps 5-6 for either service: close intake, mix,
// publish mailboxes, and erase mixer round keys. For add-friend rounds the
// PKG master keys remain open until FinishAddFriendRound.
func (c *Coordinator) CloseRound(service wire.Service, round uint32) (map[uint32][]byte, error) {
	settings, err := c.Entry.Settings(service, round)
	if err != nil {
		return nil, err
	}
	batch, err := c.Entry.CloseRound(service, round)
	if err != nil {
		return nil, err
	}
	c.SetExpectedVolume(service, len(batch))

	cur := batch
	for i, m := range c.Mixers {
		cur, err = m.Mix(service, round, settings.NumMailboxes, cur)
		if err != nil {
			return nil, fmt.Errorf("coordinator: mixer %d: %w", i, err)
		}
	}
	mailboxes, err := mixnet.BuildMailboxes(service, settings.NumMailboxes, cur)
	if err != nil {
		return nil, err
	}
	if err := c.CDN.Publish(service, round, mailboxes); err != nil {
		return nil, err
	}
	for _, m := range c.Mixers {
		m.CloseRound(service, round)
	}
	return mailboxes, nil
}

// FinishAddFriendRound erases every PKG's master secret for the round
// (§4.4: "after a preconfigured amount of time or after all users have
// obtained their private keys").
func (c *Coordinator) FinishAddFriendRound(round uint32) {
	for _, pkg := range c.PKGs {
		pkg.CloseRound(round)
	}
}
