// Package coordinator drives Alpenhorn's periodic rounds (§3.1).
//
// The paper makes the first mixnet server coordinate rounds; this package
// factors that role into its own type so it can run inside the first
// mixer's process (as in the paper), as a standalone daemon, or — most
// importantly for reproducibility — under direct control of tests and
// benchmarks, which step rounds manually instead of on timers.
//
// One add-friend round proceeds as:
//
//  1. every PKG announces a fresh signed IBE master key,
//  2. every mixer announces a fresh signed onion key,
//  3. the coordinator picks the mailbox count, assembles the signed
//     RoundSettings, and opens the round at the entry server,
//  4. clients submit onions (real or cover),
//  5. the coordinator closes intake, runs the batch through the mix
//     chain, and publishes the resulting mailboxes to the CDN,
//  6. mixers erase their round keys immediately; PKGs erase master keys
//     once clients have had time to extract identity keys.
//
// Dialing rounds are the same minus the PKG steps.
package coordinator

import (
	"fmt"
	"sync"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// Mixer is the coordinator's view of one mixnet server. It is satisfied by
// *mixnet.Server (in-process) and *rpc.MixerClient (remote daemon).
type Mixer interface {
	NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error)
	SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error
	Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error)
	CloseRound(service wire.Service, round uint32)
	NoiseMu(service wire.Service) float64
}

// StreamMixer is the optional chunked-intake surface of a Mixer. Mixers
// that implement it participate in the coordinator's streaming pipeline:
// they receive the round's batch in chunks and start decrypting before the
// upstream server has finished emitting. Mixers that don't are driven
// through full-batch Mix inside their pipeline stage.
type StreamMixer = mixnet.ChunkMixer

// NoisePreparer is the optional ahead-of-time noise surface of a Mixer.
// The coordinator calls PrepareNoise as soon as a round's settings are
// fixed, so every server generates its noise concurrently with client
// intake instead of stalling the mix.
type NoisePreparer interface {
	PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error
}

// streamCapable lets a Mixer report at runtime whether its backend
// actually supports the streaming/prepare-noise surface. rpc.MixerClient
// implements every method statically but may be talking to a daemon built
// before those RPCs existed; during a rolling upgrade it reports false and
// the coordinator falls back to full-batch Mix. Mixers that don't
// implement streamCapable are taken at interface value.
type streamCapable interface {
	SupportsStreaming() bool
}

// supportsStreaming reports whether m's streaming surface is usable.
func supportsStreaming(m Mixer) bool {
	if sc, ok := m.(streamCapable); ok {
		return sc.SupportsStreaming()
	}
	return true
}

// PKG is the coordinator's view of one PKG server. It is satisfied by
// *pkgserver.Server (in-process) and *rpc.PKGClient (remote daemon).
type PKG interface {
	NewRound(round uint32) (wire.PKGRoundKey, error)
	CloseRound(round uint32)
}

// Coordinator orchestrates rounds across the servers. It is safe for
// concurrent use, though rounds are typically driven sequentially.
type Coordinator struct {
	Entry  *entry.Server
	Mixers []Mixer
	PKGs   []PKG
	CDN    *cdn.Store

	// TargetRequestsPerMailbox controls how many requests (real + noise)
	// the coordinator aims to put in one mailbox; the paper sizes
	// add-friend mailboxes at roughly 24,000 requests (§8.2). Tests use
	// small values.
	TargetRequestsPerMailbox int

	// ChunkSize is the number of onions per pipeline chunk when streaming
	// a batch through the chain (0 = mixnet.DefaultStreamChunk).
	ChunkSize int

	// Sequential disables the streaming pipeline: the chain runs strictly
	// stage-by-stage through full-batch Mix calls. Used by benchmarks to
	// measure what the pipeline buys; production keeps it false.
	Sequential bool

	// ExpectedVolume estimates the next round's request count for
	// mailbox sizing. Updated from each observed batch.
	mu             sync.Mutex
	expectedVolume map[wire.Service]int
}

// New creates a coordinator over in-process servers, the common case for
// tests and single-machine deployments. For remote daemons, construct the
// Coordinator literal with rpc.MixerClient / rpc.PKGClient values.
func New(e *entry.Server, mixers []*mixnet.Server, pkgs []*pkgserver.Server, store *cdn.Store) *Coordinator {
	c := &Coordinator{
		Entry:                    e,
		CDN:                      store,
		TargetRequestsPerMailbox: 24000,
		expectedVolume:           make(map[wire.Service]int),
	}
	for _, m := range mixers {
		c.Mixers = append(c.Mixers, m)
	}
	for _, p := range pkgs {
		c.PKGs = append(c.PKGs, p)
	}
	return c
}

// SetExpectedVolume seeds the mailbox-count heuristic (e.g. from the
// previous round's batch size).
func (c *Coordinator) SetExpectedVolume(service wire.Service, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.expectedVolume == nil {
		c.expectedVolume = make(map[wire.Service]int)
	}
	c.expectedVolume[service] = n
}

// numMailboxes picks K: enough mailboxes that each holds roughly
// TargetRequestsPerMailbox requests, counting per-mailbox noise from every
// mixer. The paper's balance point puts "a roughly equal amount of noise
// and real requests in each mailbox" (§6).
func (c *Coordinator) numMailboxes(service wire.Service) uint32 {
	c.mu.Lock()
	expected := c.expectedVolume[service]
	c.mu.Unlock()

	perMailboxNoise := 0.0
	for _, m := range c.Mixers {
		perMailboxNoise += m.NoiseMu(service)
	}
	target := float64(c.TargetRequestsPerMailbox)
	realPerMailbox := target - perMailboxNoise
	if realPerMailbox <= 0 {
		// Noise alone exceeds the target: use one mailbox.
		return 1
	}
	k := uint32(float64(expected) / realPerMailbox)
	if k < 1 {
		k = 1
	}
	return k
}

// OpenAddFriendRound performs steps 1-3: key announcements and settings.
func (c *Coordinator) OpenAddFriendRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.AddFriend,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.AddFriend),
	}
	for i, pkg := range c.PKGs {
		rk, err := pkg.NewRound(round)
		if err != nil {
			return nil, fmt.Errorf("coordinator: PKG %d: %w", i, err)
		}
		settings.PKGs = append(settings.PKGs, rk)
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.Entry.OpenRound(settings); err != nil {
		return nil, err
	}
	return settings, nil
}

// OpenDialingRound announces a dialing round.
func (c *Coordinator) OpenDialingRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.Dialing,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.Dialing),
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.Entry.OpenRound(settings); err != nil {
		return nil, err
	}
	return settings, nil
}

func (c *Coordinator) openMixRound(settings *wire.RoundSettings) error {
	keys := make([][]byte, len(c.Mixers))
	for i, m := range c.Mixers {
		rk, err := m.NewRound(settings.Service, settings.Round)
		if err != nil {
			return fmt.Errorf("coordinator: mixer %d: %w", i, err)
		}
		settings.Mixers = append(settings.Mixers, rk)
		keys[i] = rk.OnionKey
	}
	// Each mixer needs the onion keys of the servers after it to wrap
	// its noise.
	for i, m := range c.Mixers {
		if err := m.SetDownstreamKeys(settings.Service, settings.Round, keys[i+1:]); err != nil {
			return fmt.Errorf("coordinator: mixer %d downstream keys: %w", i, err)
		}
	}
	// Settings are fixed: every server can generate its round noise now,
	// concurrently with client intake, so the mix never waits for it.
	// (Sequential mode skips this — it benchmarks the unpipelined chain,
	// where noise generation happens inside Mix.)
	if c.Sequential {
		return nil
	}
	for i, m := range c.Mixers {
		if np, ok := m.(NoisePreparer); ok && supportsStreaming(m) {
			if err := np.PrepareNoise(settings.Service, settings.Round, settings.NumMailboxes); err != nil {
				return fmt.Errorf("coordinator: mixer %d prepare noise: %w", i, err)
			}
		}
	}
	return nil
}

// CloseRound performs steps 5-6 for either service: close intake, mix,
// publish mailboxes, and erase mixer round keys. For add-friend rounds the
// PKG master keys remain open until FinishAddFriendRound.
//
// The chain runs as a streaming pipeline: the entry server hands the batch
// over in chunks, each mixer stage runs in its own goroutine, and stages
// that implement StreamMixer start decrypting while the upstream stage is
// still emitting. The final mailboxes are built sharded across workers and
// published without copying.
//
// The returned map shares its byte slices with the CDN store (the copy is
// skipped deliberately — at paper scale it is gigabytes per round); callers
// MUST treat the mailboxes as read-only. Mutating them would corrupt what
// the CDN serves.
func (c *Coordinator) CloseRound(service wire.Service, round uint32) (map[uint32][]byte, error) {
	settings, err := c.Entry.Settings(service, round)
	if err != nil {
		return nil, err
	}
	chunkSize := c.ChunkSize
	if chunkSize <= 0 {
		chunkSize = mixnet.DefaultStreamChunk
	}
	batch, err := c.Entry.CloseRound(service, round)
	if err != nil {
		return nil, err
	}
	c.SetExpectedVolume(service, len(batch))

	final, err := c.runChain(service, round, settings.NumMailboxes, mixnet.ChunkSource(batch, chunkSize), chunkSize)
	if err != nil {
		return nil, err
	}
	mailboxes, err := mixnet.BuildMailboxes(service, settings.NumMailboxes, final)
	if err != nil {
		return nil, err
	}
	// The mailbox builder allocated these buffers; hand them to the CDN
	// without a copy, then return a read-only view to the caller.
	published := make(map[uint32][]byte, len(mailboxes))
	for id, data := range mailboxes {
		published[id] = data
	}
	if err := c.CDN.PublishOwned(service, round, published); err != nil {
		return nil, err
	}
	for _, m := range c.Mixers {
		m.CloseRound(service, round)
	}
	return mailboxes, nil
}

// runChain streams the batch through the mix chain. Stages run
// concurrently; mixers without streaming support are driven by a
// full-batch Mix call inside their stage, which still overlaps with the
// other stages' noise generation and emission.
func (c *Coordinator) runChain(service wire.Service, round uint32, numMailboxes uint32, source <-chan [][]byte, chunkSize int) ([][]byte, error) {
	stages := make([]mixnet.ChunkMixer, len(c.Mixers))
	for i, m := range c.Mixers {
		if sm, ok := m.(StreamMixer); ok && !c.Sequential && supportsStreaming(m) {
			stages[i] = sm
		} else {
			stages[i] = &bufferedStage{m: m}
		}
	}
	out, err := mixnet.RunPipeline(stages, service, round, numMailboxes, source, chunkSize)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return out, nil
}

// bufferedStage adapts a full-batch Mixer to the streaming pipeline: it
// accumulates chunks and runs Mix once at StreamEnd. Used for remote
// daemons that predate the streaming RPC surface, and for benchmarking the
// unpipelined chain.
type bufferedStage struct {
	m            Mixer
	numMailboxes uint32
	batch        [][]byte
}

func (b *bufferedStage) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	b.numMailboxes = numMailboxes
	return nil
}

func (b *bufferedStage) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	b.batch = append(b.batch, chunk...)
	return nil
}

func (b *bufferedStage) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	return b.m.Mix(service, round, b.numMailboxes, b.batch)
}

func (b *bufferedStage) StreamAbort(service wire.Service, round uint32) error {
	b.batch = nil
	return nil
}

// FinishAddFriendRound erases every PKG's master secret for the round
// (§4.4: "after a preconfigured amount of time or after all users have
// obtained their private keys").
func (c *Coordinator) FinishAddFriendRound(round uint32) {
	for _, pkg := range c.PKGs {
		pkg.CloseRound(round)
	}
}
