// Package coordinator drives Alpenhorn's periodic rounds (§3.1).
//
// The paper makes the first mixnet server coordinate rounds; this package
// factors that role into its own type so it can run inside the first
// mixer's process (as in the paper), as a standalone daemon, or — most
// importantly for reproducibility — under direct control of tests and
// benchmarks, which step rounds manually instead of on timers.
//
// The coordinator is a CONTROL PLANE: it announces rounds, distributes
// keys, opens and closes intake, and sequences the chain. Where the bulk
// data of a round travels is the DATA PLANE, and the coordinator supports
// three arrangements of it:
//
//   - Chain-forward (production, ChainForward with forwarding-capable
//     daemons): each mixer daemon pushes its post-shuffle output directly
//     to its successor, and the last daemon builds the mailboxes and
//     publishes them straight to the CDN. The coordinator only streams
//     the entry server's batch to the FIRST mixer and then exchanges
//     control messages — route announcements, completion waits, aborts.
//     At paper scale (~24k-request mailboxes, millions of onions) this
//     keeps the coordinator off the bandwidth-critical path entirely.
//
//   - Coordinator-relayed streaming (default; also the rolling-upgrade
//     fallback): the chain still runs as a chunked pipeline, but every
//     server's output is pulled back to the coordinator and re-sent
//     downstream, so the batch crosses the coordinator once per hop.
//
//   - Sequential (benchmarks): strict stage-by-stage full-batch Mix
//     calls, the unpipelined baseline.
//
// One add-friend round proceeds as:
//
//  1. every PKG announces a fresh signed IBE master key,
//  2. every mixer announces a fresh signed onion key,
//  3. the coordinator picks the mailbox count, assembles the signed
//     RoundSettings, and opens the round at the entry server,
//  4. clients submit onions (real or cover), extracting their identity
//     keys from the PKGs as part of submission,
//  5. the coordinator closes intake and runs the data plane; mailboxes
//     are published to the CDN by whoever holds the final batch (the
//     coordinator when relaying, the last daemon when forwarding),
//  6. mixers erase their round keys as soon as the chain finishes. PKG
//     master keys are erased concurrently with the mix: extraction
//     happens strictly during the submission window, so once intake
//     closes the master keys are dead weight and the erasures overlap
//     the chain instead of serializing after publish.
//
// Dialing rounds are the same minus the PKG steps.
package coordinator

import (
	"fmt"
	"strings"
	"sync"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// Mixer is the coordinator's view of one mixnet server. It is satisfied by
// *mixnet.Server (in-process) and *rpc.MixerClient (remote daemon).
type Mixer interface {
	NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error)
	SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error
	Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error)
	CloseRound(service wire.Service, round uint32)
	NoiseMu(service wire.Service) float64
}

// StreamMixer is the optional chunked-intake surface of a Mixer. Mixers
// that implement it participate in the coordinator's streaming pipeline:
// they receive the round's batch in chunks and start decrypting before the
// upstream server has finished emitting. Mixers that don't are driven
// through full-batch Mix inside their pipeline stage.
type StreamMixer = mixnet.ChunkMixer

// NoisePreparer is the optional ahead-of-time noise surface of a Mixer.
// The coordinator calls PrepareNoise as soon as a round's settings are
// fixed, so every server generates its noise concurrently with client
// intake instead of stalling the mix.
type NoisePreparer interface {
	PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error
}

// streamCapable lets a Mixer report at runtime whether its backend
// actually supports the streaming/prepare-noise surface. rpc.MixerClient
// implements every method statically but may be talking to a daemon built
// before those RPCs existed; during a rolling upgrade it reports false and
// the coordinator falls back to full-batch Mix. Mixers that don't
// implement streamCapable are taken at interface value.
type streamCapable interface {
	SupportsStreaming() bool
}

// supportsStreaming reports whether m's streaming surface is usable.
func supportsStreaming(m Mixer) bool {
	if sc, ok := m.(streamCapable); ok {
		return sc.SupportsStreaming()
	}
	return true
}

// ForwardMixer is the chain-forward control surface of a Mixer whose
// daemon can push its post-shuffle output to a successor itself.
// rpc.MixerClient implements it; in-process mixnet.Servers do not (they
// have no address, and in-process chunk hand-off is already copy-free).
type ForwardMixer interface {
	// Addr is the daemon's RPC address, handed to its predecessor as
	// the round's forwarding target.
	Addr() string
	// SupportsForwarding reports whether the daemon actually serves the
	// route/wait/abort surface (capability-version negotiation; false
	// during a rolling upgrade from an older daemon).
	SupportsForwarding() bool
	// OpenRoute tells the daemon where the round's output goes: the
	// successor mixer's address, or the CDN publish address for the
	// last server.
	OpenRoute(service wire.Service, round uint32, numMailboxes uint32, chunkSize int, successor, cdnAddr string) error
	// WaitRound blocks until the daemon's data-plane role in the round
	// completes, returning its error if it failed or was aborted.
	WaitRound(service wire.Service, round uint32) error
	// AbortRound discards the daemon's in-flight stream and route,
	// unblocking any waiter; the daemon propagates the abort downstream.
	AbortRound(service wire.Service, round uint32, reason string) error
}

// PKG is the coordinator's view of one PKG server. It is satisfied by
// *pkgserver.Server (in-process) and *rpc.PKGClient (remote daemon).
type PKG interface {
	NewRound(round uint32) (wire.PKGRoundKey, error)
	CloseRound(round uint32)
}

// Coordinator orchestrates rounds across the servers. It is safe for
// concurrent use, though rounds are typically driven sequentially.
type Coordinator struct {
	Entry  *entry.Server
	Mixers []Mixer
	PKGs   []PKG
	CDN    *cdn.Store

	// TargetRequestsPerMailbox controls how many requests (real + noise)
	// the coordinator aims to put in one mailbox; the paper sizes
	// add-friend mailboxes at roughly 24,000 requests (§8.2). Tests use
	// small values.
	TargetRequestsPerMailbox int

	// ChunkSize is the number of onions per pipeline chunk when streaming
	// a batch through the chain (0 = mixnet.DefaultStreamChunk).
	ChunkSize int

	// Sequential disables the streaming pipeline: the chain runs strictly
	// stage-by-stage through full-batch Mix calls. Used by benchmarks to
	// measure what the pipeline buys; production keeps it false.
	Sequential bool

	// ChainForward moves the data plane onto the servers: mixers forward
	// their output directly to their successors and the last mixer
	// publishes to the CDN at CDNAddr, leaving the coordinator with
	// control messages only. It takes effect when every mixer implements
	// ForwardMixer and reports forwarding support; otherwise rounds fall
	// back to the coordinator-relayed pipeline (rolling upgrade).
	ChainForward bool

	// CDNAddr is the RPC address serving cdn.publish (normally this
	// coordinator's own frontend). Required for ChainForward rounds.
	CDNAddr string

	// ExpectedVolume estimates the next round's request count for
	// mailbox sizing. Updated from each observed batch.
	mu             sync.Mutex
	expectedVolume map[wire.Service]int
}

// New creates a coordinator over in-process servers, the common case for
// tests and single-machine deployments. For remote daemons, construct the
// Coordinator literal with rpc.MixerClient / rpc.PKGClient values.
func New(e *entry.Server, mixers []*mixnet.Server, pkgs []*pkgserver.Server, store *cdn.Store) *Coordinator {
	c := &Coordinator{
		Entry:                    e,
		CDN:                      store,
		TargetRequestsPerMailbox: 24000,
		expectedVolume:           make(map[wire.Service]int),
	}
	for _, m := range mixers {
		c.Mixers = append(c.Mixers, m)
	}
	for _, p := range pkgs {
		c.PKGs = append(c.PKGs, p)
	}
	return c
}

// SetExpectedVolume seeds the mailbox-count heuristic (e.g. from the
// previous round's batch size).
func (c *Coordinator) SetExpectedVolume(service wire.Service, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.expectedVolume == nil {
		c.expectedVolume = make(map[wire.Service]int)
	}
	c.expectedVolume[service] = n
}

// numMailboxes picks K: enough mailboxes that each holds roughly
// TargetRequestsPerMailbox requests, counting per-mailbox noise from every
// mixer. The paper's balance point puts "a roughly equal amount of noise
// and real requests in each mailbox" (§6).
func (c *Coordinator) numMailboxes(service wire.Service) uint32 {
	c.mu.Lock()
	expected := c.expectedVolume[service]
	c.mu.Unlock()

	perMailboxNoise := 0.0
	for _, m := range c.Mixers {
		perMailboxNoise += m.NoiseMu(service)
	}
	target := float64(c.TargetRequestsPerMailbox)
	realPerMailbox := target - perMailboxNoise
	if realPerMailbox <= 0 {
		// Noise alone exceeds the target: use one mailbox.
		return 1
	}
	k := uint32(float64(expected) / realPerMailbox)
	if k < 1 {
		k = 1
	}
	return k
}

// fanOut runs fn(0), …, fn(n-1) on their own goroutines and returns the
// first error. Against remote daemons each call is a network round trip,
// so key announcements and erasures fan out instead of serializing.
func fanOut(n int, fn func(i int) error) error {
	if n <= 1 {
		if n == 1 {
			return fn(0)
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// OpenAddFriendRound performs steps 1-3: key announcements and settings.
func (c *Coordinator) OpenAddFriendRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.AddFriend,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.AddFriend),
	}
	settings.PKGs = make([]wire.PKGRoundKey, len(c.PKGs))
	err := fanOut(len(c.PKGs), func(i int) error {
		rk, err := c.PKGs[i].NewRound(round)
		if err != nil {
			return fmt.Errorf("coordinator: PKG %d: %w", i, err)
		}
		settings.PKGs[i] = rk
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.Entry.OpenRound(settings); err != nil {
		return nil, err
	}
	return settings, nil
}

// OpenDialingRound announces a dialing round.
func (c *Coordinator) OpenDialingRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.Dialing,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.Dialing),
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.Entry.OpenRound(settings); err != nil {
		return nil, err
	}
	return settings, nil
}

func (c *Coordinator) openMixRound(settings *wire.RoundSettings) error {
	keys := make([][]byte, len(c.Mixers))
	settings.Mixers = make([]wire.MixerRoundKey, len(c.Mixers))
	err := fanOut(len(c.Mixers), func(i int) error {
		rk, err := c.Mixers[i].NewRound(settings.Service, settings.Round)
		if err != nil {
			return fmt.Errorf("coordinator: mixer %d: %w", i, err)
		}
		settings.Mixers[i] = rk
		keys[i] = rk.OnionKey
		return nil
	})
	if err != nil {
		return err
	}
	// Each mixer needs the onion keys of the servers after it to wrap its
	// noise; with the keys distributed, every server can generate its
	// round noise concurrently with client intake, so the mix never waits
	// for it. (Sequential mode skips the preparation — it benchmarks the
	// unpipelined chain, where noise generation happens inside Mix.)
	return fanOut(len(c.Mixers), func(i int) error {
		m := c.Mixers[i]
		if err := m.SetDownstreamKeys(settings.Service, settings.Round, keys[i+1:]); err != nil {
			return fmt.Errorf("coordinator: mixer %d downstream keys: %w", i, err)
		}
		if c.Sequential {
			return nil
		}
		if np, ok := m.(NoisePreparer); ok && supportsStreaming(m) {
			if err := np.PrepareNoise(settings.Service, settings.Round, settings.NumMailboxes); err != nil {
				return fmt.Errorf("coordinator: mixer %d prepare noise: %w", i, err)
			}
		}
		return nil
	})
}

// CloseRound performs steps 5-6 for either service: close intake, run the
// data plane, publish mailboxes, and erase round keys.
//
// For add-friend rounds the PKG master keys are erased CONCURRENTLY with
// the mix chain: clients extract identity keys strictly while submitting,
// so once intake closes the erasures can overlap the mix instead of
// serializing after publish (FinishAddFriendRound remains as an explicit,
// idempotent hook for drivers that want a later erasure point).
//
// In chain-forward mode the mailboxes never pass through the coordinator:
// the last daemon publishes them to the CDN at CDNAddr and the returned
// map is nil — clients (and tests) fetch from the CDN.
//
// Otherwise the chain runs as the coordinator-relayed streaming pipeline:
// the entry server hands the batch over in chunks, each mixer stage runs
// in its own goroutine, and stages that implement StreamMixer start
// decrypting while the upstream stage is still emitting. The final
// mailboxes are built sharded across workers and published without
// copying. The returned map shares its byte slices with the CDN store
// (the copy is skipped deliberately — at paper scale it is gigabytes per
// round); callers MUST treat the mailboxes as read-only. Mutating them
// would corrupt what the CDN serves.
func (c *Coordinator) CloseRound(service wire.Service, round uint32) (map[uint32][]byte, error) {
	settings, err := c.Entry.Settings(service, round)
	if err != nil {
		return nil, err
	}
	chunkSize := c.ChunkSize
	if chunkSize <= 0 {
		chunkSize = mixnet.DefaultStreamChunk
	}
	batch, err := c.Entry.CloseRound(service, round)
	if err != nil {
		return nil, err
	}
	c.SetExpectedVolume(service, len(batch))

	// Intake is closed: no further extractions can happen, so the PKG
	// master keys die now, overlapping the chain.
	pkgErased := make(chan struct{})
	if service == wire.AddFriend {
		go func() {
			defer close(pkgErased)
			c.FinishAddFriendRound(round)
		}()
	} else {
		close(pkgErased)
	}
	defer func() { <-pkgErased }()

	// Likewise, once the batch is out of intake the mixers' round keys
	// die with the round whether it succeeds or fails — a failed round
	// is never retried (the next round carries the traffic), and keys
	// that outlive their round are a forward-secrecy hazard.
	defer c.closeMixerRounds(service, round)

	if fwd := c.forwardMixers(); fwd != nil {
		if err := c.runChainForwarded(service, round, settings.NumMailboxes, batch, chunkSize, fwd); err != nil {
			return nil, err
		}
		return nil, nil
	}

	final, err := c.runChain(service, round, settings.NumMailboxes, mixnet.ChunkSource(batch, chunkSize), chunkSize)
	if err != nil {
		return nil, err
	}
	mailboxes, err := mixnet.BuildMailboxes(service, settings.NumMailboxes, final)
	if err != nil {
		return nil, err
	}
	// The mailbox builder allocated these buffers; hand them to the CDN
	// without a copy, then return a read-only view to the caller.
	published := make(map[uint32][]byte, len(mailboxes))
	for id, data := range mailboxes {
		published[id] = data
	}
	if err := c.CDN.PublishOwned(service, round, published); err != nil {
		return nil, err
	}
	return mailboxes, nil
}

// closeMixerRounds erases every mixer's round key, fanning the calls out
// (each is a network round trip against daemons). Erasure failures are
// the daemons' problem — CloseRound is fire-and-forget, like the
// in-process API.
func (c *Coordinator) closeMixerRounds(service wire.Service, round uint32) {
	_ = fanOut(len(c.Mixers), func(i int) error {
		c.Mixers[i].CloseRound(service, round)
		return nil
	})
}

// forwardMixers returns the chain as ForwardMixers when the chain-forward
// data plane is usable: ChainForward is set, a CDN publish address exists,
// and every mixer supports both streaming and forwarding. Otherwise nil,
// and the round falls back to the coordinator-relayed pipeline.
func (c *Coordinator) forwardMixers() []ForwardMixer {
	if !c.ChainForward || c.Sequential || c.CDNAddr == "" || len(c.Mixers) == 0 {
		return nil
	}
	fwd := make([]ForwardMixer, len(c.Mixers))
	for i, m := range c.Mixers {
		fm, ok := m.(ForwardMixer)
		if !ok || !fm.SupportsForwarding() || !supportsStreaming(m) {
			return nil
		}
		if _, ok := m.(StreamMixer); !ok {
			return nil
		}
		fwd[i] = fm
	}
	return fwd
}

// runChainForwarded drives the chain-forward data plane: open a route on
// every daemon (back to front, so each successor is routed before its
// predecessor could possibly forward), stream the entry batch to the
// first mixer, then wait on every daemon's completion. On the first
// failure the round is aborted everywhere — daemons also propagate aborts
// down the chain themselves, so a mid-chain death cannot wedge its
// successors.
func (c *Coordinator) runChainForwarded(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte, chunkSize int, fwd []ForwardMixer) error {
	abortAll := func(reason error) {
		_ = fanOut(len(fwd), func(i int) error {
			return fwd[i].AbortRound(service, round, reason.Error())
		})
	}

	for i := len(fwd) - 1; i >= 0; i-- {
		successor, cdnAddr := "", ""
		if i == len(fwd)-1 {
			cdnAddr = c.CDNAddr
		} else {
			successor = fwd[i+1].Addr()
		}
		if err := fwd[i].OpenRoute(service, round, numMailboxes, chunkSize, successor, cdnAddr); err != nil {
			err = fmt.Errorf("coordinator: routing mixer %d: %w", i, err)
			abortAll(err)
			return err
		}
	}

	// The entry batch is the one payload the coordinator still moves: it
	// owns the entry server, so this hop is unavoidable and costs one
	// batch-width, not one per chain hop.
	first := c.Mixers[0].(StreamMixer)
	if err := c.feedFirstMixer(first, service, round, numMailboxes, batch, chunkSize); err != nil {
		err = fmt.Errorf("coordinator: feeding mixer 0: %w", err)
		abortAll(err)
		return err
	}

	errs := make([]error, len(fwd))
	var abortOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(len(fwd))
	for i := range fwd {
		go func(i int) {
			defer wg.Done()
			if err := fwd[i].WaitRound(service, round); err != nil {
				errs[i] = err
				// First failure: abort everywhere, which releases every
				// other daemon's waiter too.
				abortOnce.Do(func() {
					abortAll(fmt.Errorf("mixer %d: %v", i, err))
				})
			}
		}(i)
	}
	wg.Wait()

	// Prefer a root-cause error over propagated "aborted:" echoes.
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("coordinator: forwarded chain, mixer %d: %w", i, err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if !strings.HasPrefix(err.Error(), "aborted:") {
			return wrapped
		}
	}
	return firstErr
}

// feedFirstMixer streams the closed entry batch into the head of the
// chain.
func (c *Coordinator) feedFirstMixer(first StreamMixer, service wire.Service, round uint32, numMailboxes uint32, batch [][]byte, chunkSize int) error {
	if err := first.StreamBegin(service, round, numMailboxes); err != nil {
		return err
	}
	for lo := 0; lo < len(batch); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(batch) {
			hi = len(batch)
		}
		if err := first.StreamChunk(service, round, batch[lo:hi]); err != nil {
			return err
		}
	}
	_, err := first.StreamEnd(service, round)
	return err
}

// runChain streams the batch through the mix chain. Stages run
// concurrently; mixers without streaming support are driven by a
// full-batch Mix call inside their stage, which still overlaps with the
// other stages' noise generation and emission.
func (c *Coordinator) runChain(service wire.Service, round uint32, numMailboxes uint32, source <-chan [][]byte, chunkSize int) ([][]byte, error) {
	stages := make([]mixnet.ChunkMixer, len(c.Mixers))
	for i, m := range c.Mixers {
		if sm, ok := m.(StreamMixer); ok && !c.Sequential && supportsStreaming(m) {
			stages[i] = sm
		} else {
			stages[i] = &bufferedStage{m: m}
		}
	}
	out, err := mixnet.RunPipeline(stages, service, round, numMailboxes, source, chunkSize)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return out, nil
}

// bufferedStage adapts a full-batch Mixer to the streaming pipeline: it
// accumulates chunks and runs Mix once at StreamEnd. Used for remote
// daemons that predate the streaming RPC surface, and for benchmarking the
// unpipelined chain.
type bufferedStage struct {
	m            Mixer
	numMailboxes uint32
	batch        [][]byte
}

func (b *bufferedStage) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	b.numMailboxes = numMailboxes
	return nil
}

func (b *bufferedStage) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	b.batch = append(b.batch, chunk...)
	return nil
}

func (b *bufferedStage) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	return b.m.Mix(service, round, b.numMailboxes, b.batch)
}

func (b *bufferedStage) StreamAbort(service wire.Service, round uint32) error {
	b.batch = nil
	return nil
}

// FinishAddFriendRound erases every PKG's master secret for the round
// (§4.4: "after a preconfigured amount of time or after all users have
// obtained their private keys"). CloseRound already runs this concurrently
// with the mix chain — all extractions happen inside the submission window
// — so calling it again is an idempotent no-op; it remains exported for
// drivers that open rounds without closing them. The erasures fan out:
// against remote PKG daemons each is a network round trip.
func (c *Coordinator) FinishAddFriendRound(round uint32) {
	_ = fanOut(len(c.PKGs), func(i int) error {
		c.PKGs[i].CloseRound(round)
		return nil
	})
}
