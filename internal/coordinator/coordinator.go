// Package coordinator drives Alpenhorn's periodic rounds (§3.1).
//
// The paper makes the first mixnet server coordinate rounds; this package
// factors that role into its own type so it can run inside the first
// mixer's process (as in the paper), as a standalone daemon, or — most
// importantly for reproducibility — under direct control of tests and
// benchmarks, which step rounds manually instead of on timers.
//
// The coordinator is a CONTROL PLANE: it announces rounds, distributes
// keys, opens and closes intake, and sequences the chain. Where the bulk
// data of a round travels is the DATA PLANE, and the coordinator supports
// three arrangements of it:
//
//   - Chain-forward (production, ChainForward with forwarding-capable
//     daemons): each mixer daemon pushes its post-shuffle output directly
//     to its successor, and the last daemon builds the mailboxes and
//     publishes them straight to the CDN. The coordinator only streams
//     the entry server's batch to the FIRST position and then exchanges
//     control messages — route announcements, completion waits, aborts.
//     At paper scale (~24k-request mailboxes, millions of onions) this
//     keeps the coordinator off the bandwidth-critical path entirely.
//
//   - Coordinator-relayed streaming (default; also the rolling-upgrade
//     fallback): the chain still runs as a chunked pipeline, but every
//     server's output is pulled back to the coordinator and re-sent
//     downstream, so the batch crosses the coordinator once per hop.
//
//   - Sequential (benchmarks): strict stage-by-stage full-batch Mix
//     calls, the unpipelined baseline.
//
// # Shard groups
//
// On the chain-forward plane, one chain position may be SHARDED across
// several daemons (Shards): the coordinator plans the group each round
// and announces it through the routes. Shard 0 of a group is its
// ANNOUNCER: it generates and announces the position's one round key —
// clients pin ITS signing key, so it is the one member the scheduler can
// never substitute. The other members pull the key inside the group's
// trust domain (the private key never crosses the coordinator), along a
// two-step chain when the merge role is rotated: the round's lead pulls
// from the announcer, everyone else pulls from the lead. Key export is
// gated to the round's planned shard network — daemons refuse
// mix.round.exportkey calls from hosts outside the peer list the
// coordinator distributed with the layout.
//
// Every member learns its shard index and group size at round open
// (SetRoundShard, before noise generation, because the group divides the
// position's per-mailbox noise), and the routes give each merge server
// the successor position's FULL shard set so it can deal its
// post-shuffle chunks across them. Aborts fan out to every shard of
// every position. Clients never see any of this: round settings carry
// one key per position either way.
//
// Sharded rounds have NO fallback plane — the noise was divided at round
// open, so if the fleet cannot run the sharded chain-forward plane the
// round fails at open rather than running with an eroded noise floor.
//
// # Self-healing rounds (schedule.go)
//
// The merge/build-lead role — where the position's single full-batch
// shuffle runs, where deposits funnel, and where mix.deal.* fans out —
// is a ROLE, not a machine: it rotates round-robin across each group per
// round (round % groupSize; PinLead pins it to slot 0). Rotation never
// changes a round's output, because the shuffle permutation is derived
// from the round key that every member holds.
//
// Each round is planned against a per-daemon scoreboard built from the
// previous rounds' health: daemons that crashed, stalled past the
// latency SLO, or failed locally are benched and replaced from the
// position's hot-spare pool (Spares) at the same shard slot; benched
// daemons are probed with a short-timeout mix.info each plan and
// re-admitted once they recover. Abort-reason codes from mix.round.wait
// (slow / crashed / upstream / error) let the scheduler distinguish a
// daemon's own failure from an abort it merely echoed. The pipeline
// chunk size can adapt per round to observed outcomes (AdaptiveChunk)
// inside a bounded window, and RoundDeadline bounds every daemon's
// peer-dial retries so a dead peer costs bounded time, not the round's
// wait timeout.
//
// The coordinator keeps per-round health (Status): wall time, batch
// size, and — for forwarded rounds — each daemon's self-reported
// duration, batch bytes, and abort reason from the mix.round.wait
// long-poll. The scheduler's scoreboard (Scoreboard) is served to
// operators read-only over the coordinator.status RPC.
//
// One add-friend round proceeds as:
//
//  1. every PKG announces a fresh signed IBE master key,
//  2. every mixer announces a fresh signed onion key,
//  3. the coordinator picks the mailbox count, assembles the signed
//     RoundSettings, and opens the round at the entry server,
//  4. clients submit onions (real or cover), extracting their identity
//     keys from the PKGs as part of submission,
//  5. the coordinator closes intake and runs the data plane; mailboxes
//     are published to the CDN by whoever holds the final batch (the
//     coordinator when relaying, the last daemon when forwarding),
//  6. mixers erase their round keys as soon as the chain finishes. PKG
//     master keys are erased concurrently with the mix: extraction
//     happens strictly during the submission window, so once intake
//     closes the master keys are dead weight and the erasures overlap
//     the chain instead of serializing after publish.
//
// Dialing rounds are the same minus the PKG steps.
package coordinator

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// Mixer is the coordinator's view of one mixnet server. It is satisfied by
// *mixnet.Server (in-process) and *rpc.MixerClient (remote daemon).
type Mixer interface {
	NewRound(service wire.Service, round uint32) (wire.MixerRoundKey, error)
	SetDownstreamKeys(service wire.Service, round uint32, keys [][]byte) error
	Mix(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte) ([][]byte, error)
	CloseRound(service wire.Service, round uint32)
	NoiseMu(service wire.Service) float64
}

// StreamMixer is the optional chunked-intake surface of a Mixer. Mixers
// that implement it participate in the coordinator's streaming pipeline:
// they receive the round's batch in chunks and start decrypting before the
// upstream server has finished emitting. Mixers that don't are driven
// through full-batch Mix inside their pipeline stage.
type StreamMixer = mixnet.ChunkMixer

// NoisePreparer is the optional ahead-of-time noise surface of a Mixer.
// The coordinator calls PrepareNoise as soon as a round's settings are
// fixed, so every server generates its noise concurrently with client
// intake instead of stalling the mix.
type NoisePreparer interface {
	PrepareNoise(service wire.Service, round uint32, numMailboxes uint32) error
}

// streamCapable lets a Mixer report at runtime whether its backend
// actually supports the streaming/prepare-noise surface. rpc.MixerClient
// implements every method statically but may be talking to a daemon built
// before those RPCs existed; during a rolling upgrade it reports false and
// the coordinator falls back to full-batch Mix. Mixers that don't
// implement streamCapable are taken at interface value.
type streamCapable interface {
	SupportsStreaming() bool
}

// supportsStreaming reports whether m's streaming surface is usable.
func supportsStreaming(m Mixer) bool {
	if sc, ok := m.(streamCapable); ok {
		return sc.SupportsStreaming()
	}
	return true
}

// RouteSpec is wire.RouteSpec: one daemon's forwarding assignment for a
// round — where its output goes and, when its position is sharded, its
// place in the shard group.
type RouteSpec = wire.RouteSpec

// ForwardMixer is the chain-forward control surface of a Mixer whose
// daemon can push its post-shuffle output to a successor itself.
// rpc.MixerClient implements it; in-process mixnet.Servers do not (they
// have no address, and in-process chunk hand-off is already copy-free).
type ForwardMixer interface {
	// Addr is the daemon's RPC address, handed to its predecessor as
	// the round's forwarding target.
	Addr() string
	// SupportsForwarding reports whether the daemon actually serves the
	// route/wait/abort surface (capability-version negotiation; false
	// during a rolling upgrade from an older daemon).
	SupportsForwarding() bool
	// OpenRoute tells the daemon where the round's output goes and its
	// shard-group placement, if any.
	OpenRoute(service wire.Service, round uint32, spec RouteSpec) error
	// WaitRound blocks until the daemon's data-plane role in the round
	// completes, returning the daemon's self-reported duration and byte
	// counts, and its error if it failed or was aborted.
	WaitRound(service wire.Service, round uint32) (wire.MixerRoundStats, error)
	// AbortRound discards the daemon's in-flight stream and route,
	// unblocking any waiter; the daemon propagates the abort downstream.
	AbortRound(service wire.Service, round uint32, reason string) error
}

// ShardMixer is the shard-group control surface of a Mixer: per-round
// shard layout and group key exchange. rpc.MixerClient implements it for
// StreamVersionShard daemons.
type ShardMixer interface {
	// SetRoundShard places the daemon in the round's shard group for
	// its position (shard index of count). Must precede PrepareNoise:
	// the group divides the position's per-mailbox noise.
	SetRoundShard(service wire.Service, round uint32, index, count int) error
	// ImportRoundKeyFrom makes the daemon pull the position's round
	// onion key directly from the group's lead — the private key moves
	// inside the group's trust domain, the coordinator only names the
	// source.
	ImportRoundKeyFrom(service wire.Service, round uint32, leadAddr string) error
}

// shardCapable mirrors streamCapable for the shard-group surface.
type shardCapable interface {
	SupportsSharding() bool
}

// supportsSharding reports whether m's shard surface is usable. Unlike
// streaming (default true for in-process servers), sharding defaults to
// FALSE: it only exists across daemons, and a silent downgrade would
// break the noise-division invariant.
func supportsSharding(m Mixer) bool {
	if sc, ok := m.(shardCapable); ok {
		return sc.SupportsSharding()
	}
	return false
}

// buildCapable mirrors shardCapable for the sharded mailbox-build surface
// (StreamVersionCDNShard): the last position's shard group deals the
// post-shuffle batch by mailbox ID and each shard publishes its own slice
// to the CDN. Like sharding, it defaults to FALSE — the round falls back
// to the merge server building every mailbox (rolling upgrade).
type buildCapable interface {
	SupportsShardedBuild() bool
}

func supportsShardedBuild(fm ForwardMixer) bool {
	if bc, ok := fm.(buildCapable); ok {
		return bc.SupportsShardedBuild()
	}
	return false
}

// PKG is the coordinator's view of one PKG server. It is satisfied by
// *pkgserver.Server (in-process) and *rpc.PKGClient (remote daemon).
type PKG interface {
	NewRound(round uint32) (wire.PKGRoundKey, error)
	CloseRound(round uint32)
}

// PairingPKG is the optional optimal-ate (v2 sealed-ciphertext tier)
// surface of a PKG: a round key signed under the v2 domain tag. The
// negotiation is all-or-nothing per round — the coordinator opens a v2
// round only when EVERY PKG implements this interface and every
// NewRoundV2 call succeeds; any absence or failure (an rpc.PKGClient
// talking to a pre-v2 daemon returns an unknown-method error) downgrades
// the WHOLE round to v1. Mixed versions within one round are never
// produced: every client would derive garbage from a settings blob whose
// keys disagree on the pairing.
type PairingPKG interface {
	NewRoundV2(round uint32) (wire.PKGRoundKey, error)
}

// Frontend is the coordinator's view of one ADDITIONAL entry frontend
// beyond Entry (which is always frontend 0). It is satisfied by
// *entry.Server (in-process replica) and *rpc.EntryReplicaClient (a
// remote frontend's entry.replicate surface).
//
// The coordinator replays every announcement to every frontend in one
// serialized order, so the frontends' event logs assign identical cursors
// — one cursor namespace for the whole tier, which is what lets a client
// fail over between frontends mid-round without a snapshot reset. Each
// frontend admits its own sub-batch; CloseRound hands it back for the
// relayed data plane.
type Frontend interface {
	OpenRound(settings *wire.RoundSettings) error
	AnnouncePublished(service wire.Service, round uint32)
	CloseRound(service wire.Service, round uint32) ([][]byte, error)
}

// FrontendFeeder is the optional chain-forward data plane of a Frontend:
// the frontend keeps its closed sub-batch and deals it into position 0's
// shard set itself, tagged with its upstream index, so at N frontends the
// batches never cross the coordinator. rpc.EntryReplicaClient implements
// it; in-process frontends don't need to (their batch is already local).
type FrontendFeeder interface {
	// CloseIntake closes the frontend's round and reports the sub-batch
	// size, leaving the batch stashed frontend-side for FeedBatch.
	CloseIntake(service wire.Service, round uint32) (int, error)
	// FeedBatch deals the stashed sub-batch across position 0's shard
	// set (chunk i to shard i mod N) as upstream feeder `upstream`.
	FeedBatch(service wire.Service, round uint32, numMailboxes uint32, chunkSize int, shards []string, upstream int) error
}

// Coordinator orchestrates rounds across the servers. It is safe for
// concurrent use, though rounds are typically driven sequentially.
type Coordinator struct {
	Entry  *entry.Server
	Mixers []Mixer
	PKGs   []PKG
	CDN    *cdn.Store

	// Frontends lists ADDITIONAL entry frontends; Entry is frontend 0.
	// Every announcement fans out to all of them under one lock (annMu)
	// so their event logs stay cursor-identical, and at round close each
	// frontend's sub-batch joins the chain as its own counted upstream
	// (chain-forward) or is concatenated in frontend order (relayed).
	// Frontends must start with the coordinator: the replay carries no
	// history, so a late joiner's cursors would diverge.
	Frontends []Frontend

	// Shards lists ADDITIONAL shard daemons per chain position:
	// position i is served by Mixers[i] (shard 0 — the group's
	// ANNOUNCER, whose pinned signing key clients verify, and the
	// round-key source) plus Shards[i] (shards 1..N-1), in shard-index
	// order. A nil or empty entry leaves the position unsharded. The
	// merge/build-lead ROLE within each group rotates per round (see
	// PinLead). Sharded rounds require the chain-forward data plane and
	// shard-capable daemons everywhere; there is no silent fallback,
	// because the shards divide the position's noise at round open.
	Shards [][]Mixer

	// Spares lists hot-spare daemons per chain position: unpinned,
	// idle daemons the scheduler drafts into a benched member's exact
	// shard slot for a round (the announcer, slot 0, is never
	// substituted — clients pin its key). A spare returns to the pool
	// when its round's plan is dropped. Positions beyond len(Spares)
	// have no spares.
	Spares [][]Mixer

	// PinLead pins each shard group's merge/build-lead role to slot 0
	// (the pre-rotation layout) instead of rotating it round-robin per
	// round. Rotation never changes a round's output — the permutation
	// is derived from the round key every member holds — so this exists
	// for A/B determinism tests and operators who want a fixed funnel.
	PinLead bool

	// AdaptiveChunk lets the scheduler adapt the pipeline chunk size
	// per round to observed outcomes, inside [ChunkSize/4, ChunkSize*4].
	// Off by default: a fixed chunk keeps fixed-seed rounds reproducible.
	AdaptiveChunk bool

	// LatencySLO, when set, is the per-daemon round-duration budget: a
	// daemon whose self-reported duration exceeds it is treated as slow
	// (benched and, with AdaptiveChunk, the chunk size shrinks) even if
	// the round succeeded.
	LatencySLO time.Duration

	// RoundDeadline, when set, bounds each daemon's data-plane work per
	// round (RouteSpec.DeadlineMs): peer-dial retries give up once it
	// passes instead of burning the whole round against a dead peer.
	RoundDeadline time.Duration

	// HealthRing bounds how many recent rounds Status retains
	// (0 = defaultHealthRing).
	HealthRing int

	// TargetRequestsPerMailbox controls how many requests (real + noise)
	// the coordinator aims to put in one mailbox; the paper sizes
	// add-friend mailboxes at roughly 24,000 requests (§8.2). Tests use
	// small values.
	TargetRequestsPerMailbox int

	// ChunkSize is the number of onions per pipeline chunk when streaming
	// a batch through the chain (0 = mixnet.DefaultStreamChunk).
	ChunkSize int

	// Sequential disables the streaming pipeline: the chain runs strictly
	// stage-by-stage through full-batch Mix calls. Used by benchmarks to
	// measure what the pipeline buys; production keeps it false.
	Sequential bool

	// PairingV2 enables negotiation of the optimal-ate sealed-ciphertext
	// tier for add-friend rounds. Rounds open at v2 only when every PKG
	// supports it (see PairingPKG); otherwise — and always when this gate
	// is off — rounds open at v1, byte-identical to pre-capability
	// settings.
	PairingV2 bool

	// ChainForward moves the data plane onto the servers: mixers forward
	// their output directly to their successors and the last mixer
	// publishes to the CDN at CDNAddr, leaving the coordinator with
	// control messages only. It takes effect when every mixer implements
	// ForwardMixer and reports forwarding support; otherwise rounds fall
	// back to the coordinator-relayed pipeline (rolling upgrade).
	ChainForward bool

	// CDNAddr is the RPC address serving cdn.publish (normally this
	// coordinator's own frontend). Required for ChainForward rounds.
	CDNAddr string

	// CDNMirrors are additional in-process CDN replicas that receive a
	// copy of every round the RELAYED path publishes to CDN. (Forwarded
	// rounds replicate server-side: the ingest CDN node pushes sealed
	// rounds to its peers itself.) The simulator uses this for its extra
	// replicas; failures are best-effort, a mirror backfills later.
	CDNMirrors []*cdn.Store

	// Logger, when set, gets one round-health line per closed round.
	Logger *log.Logger

	// ExpectedVolume estimates the next round's request count for
	// mailbox sizing. Updated from each observed batch.
	mu             sync.Mutex
	expectedVolume map[wire.Service]int
	health         []RoundHealth

	// Scheduler state (schedule.go), all guarded by mu: the per-round
	// plans captured at open, the per-daemon scoreboard, the adaptive
	// chunk size per service, and the spares currently drafted into
	// open plans.
	plans      map[planKey]*roundPlan
	scores     map[string]*daemonScore
	chunkNow   map[wire.Service]int
	draftedNow map[string]int

	// annMu serializes announcement fan-out across the frontend tier.
	// Concurrent round opens (the add-friend and dialing timers tick
	// independently) must reach every frontend's log in the SAME order,
	// or the replicas' cursors diverge and failover breaks.
	annMu sync.Mutex
}

// defaultHealthRing bounds how many recent rounds Status retains when
// Config.HealthRing is unset — sized so the coordinator.status surface
// can show meaningful failure-rate history, not just the last burst.
const defaultHealthRing = 64

// healthRingSize is the configured Status retention.
func (c *Coordinator) healthRingSize() int {
	if c.HealthRing > 0 {
		return c.HealthRing
	}
	return defaultHealthRing
}

// DaemonRoundStats is one daemon's outcome in a closed round, built from
// its mix.round.wait reply.
type DaemonRoundStats struct {
	Position int
	Shard    int
	Addr     string
	Stats    wire.MixerRoundStats
	Err      string
}

// RoundHealth is the coordinator's record of one closed round: overall
// wall time plus each daemon's self-reported duration and batch bytes.
// The scheduler seed for skipping or replacing a flapping daemon.
type RoundHealth struct {
	Service  wire.Service
	Round    uint32
	Batch    int
	Duration time.Duration
	// Forwarded reports which data plane ran; per-daemon stats exist
	// only for forwarded rounds (they come from mix.round.wait).
	Forwarded bool
	Daemons   []DaemonRoundStats
	Err       string
}

// String renders the health record as the coordinator's per-round log line.
func (h RoundHealth) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v round %d: batch=%d duration=%s", h.Service, h.Round, h.Batch, h.Duration.Round(time.Millisecond))
	if !h.Forwarded {
		b.WriteString(" plane=relayed")
	}
	if h.Err != "" {
		fmt.Fprintf(&b, " err=%q", h.Err)
	}
	for _, d := range h.Daemons {
		fmt.Fprintf(&b, " pos%d/s%d=%s/%dKB-in/%dKB-out",
			d.Position, d.Shard, d.Stats.Duration.Round(time.Millisecond),
			d.Stats.BytesIn/1024, d.Stats.BytesOut/1024)
		if d.Err != "" {
			fmt.Fprintf(&b, "(err=%q)", d.Err)
		}
	}
	return b.String()
}

// Status returns the health records of recent rounds, newest last. The
// slice is a copy; callers may keep it.
func (c *Coordinator) Status() []RoundHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RoundHealth, len(c.health))
	copy(out, c.health)
	return out
}

// recordHealth appends a round's health to the bounded ring, folds the
// per-daemon outcomes into the scheduler's scoreboard, adapts the chunk
// size, and emits the per-round log line.
func (c *Coordinator) recordHealth(h RoundHealth) {
	c.mu.Lock()
	c.health = append(c.health, h)
	if ring := c.healthRingSize(); len(c.health) > ring {
		c.health = c.health[len(c.health)-ring:]
	}
	c.updateScoreboard(h)
	c.adaptChunk(h)
	c.mu.Unlock()
	if c.Logger != nil {
		c.Logger.Printf("round health: %s", h)
	}
}

// New creates a coordinator over in-process servers, the common case for
// tests and single-machine deployments. For remote daemons, construct the
// Coordinator literal with rpc.MixerClient / rpc.PKGClient values.
func New(e *entry.Server, mixers []*mixnet.Server, pkgs []*pkgserver.Server, store *cdn.Store) *Coordinator {
	c := &Coordinator{
		Entry:                    e,
		CDN:                      store,
		TargetRequestsPerMailbox: 24000,
		expectedVolume:           make(map[wire.Service]int),
	}
	for _, m := range mixers {
		c.Mixers = append(c.Mixers, m)
	}
	for _, p := range pkgs {
		c.PKGs = append(c.PKGs, p)
	}
	return c
}

// SetExpectedVolume seeds the mailbox-count heuristic (e.g. from the
// previous round's batch size).
func (c *Coordinator) SetExpectedVolume(service wire.Service, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.expectedVolume == nil {
		c.expectedVolume = make(map[wire.Service]int)
	}
	c.expectedVolume[service] = n
}

// numMailboxes picks K: enough mailboxes that each holds roughly
// TargetRequestsPerMailbox requests, counting per-mailbox noise from every
// mixer. The paper's balance point puts "a roughly equal amount of noise
// and real requests in each mailbox" (§6).
func (c *Coordinator) numMailboxes(service wire.Service) uint32 {
	c.mu.Lock()
	expected := c.expectedVolume[service]
	c.mu.Unlock()

	perMailboxNoise := 0.0
	for _, m := range c.Mixers {
		perMailboxNoise += m.NoiseMu(service)
	}
	target := float64(c.TargetRequestsPerMailbox)
	realPerMailbox := target - perMailboxNoise
	if realPerMailbox <= 0 {
		// Noise alone exceeds the target: use one mailbox.
		return 1
	}
	k := uint32(float64(expected) / realPerMailbox)
	if k < 1 {
		k = 1
	}
	return k
}

// fanOut runs fn(0), …, fn(n-1) on their own goroutines and returns the
// first error. Against remote daemons each call is a network round trip,
// so key announcements and erasures fan out instead of serializing.
func fanOut(n int, fn func(i int) error) error {
	if n <= 1 {
		if n == 1 {
			return fn(0)
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// announceOpen opens the round on every frontend, holding annMu so that
// concurrently opening rounds cannot interleave differently in different
// replicas' logs. A replica that cannot take the open fails the round:
// proceeding would fork the cursor namespace, which breaks failover far
// more subtly than a skipped round does.
func (c *Coordinator) announceOpen(settings *wire.RoundSettings) error {
	c.annMu.Lock()
	defer c.annMu.Unlock()
	if err := c.Entry.OpenRound(settings); err != nil {
		return err
	}
	for i, f := range c.Frontends {
		if err := f.OpenRound(settings); err != nil {
			return fmt.Errorf("coordinator: frontend %d open: %w", i+1, err)
		}
	}
	return nil
}

// announcePublished replays the publish announcement to every frontend,
// under the same ordering lock as opens.
func (c *Coordinator) announcePublished(service wire.Service, round uint32) {
	c.annMu.Lock()
	defer c.annMu.Unlock()
	c.Entry.AnnouncePublished(service, round)
	for _, f := range c.Frontends {
		f.AnnouncePublished(service, round)
	}
}

// OpenAddFriendRound performs steps 1-3: key announcements and settings.
func (c *Coordinator) OpenAddFriendRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.AddFriend,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.AddFriend),
	}
	settings.PKGs = make([]wire.PKGRoundKey, len(c.PKGs))
	if c.PairingV2 && c.openPKGRoundV2(round, settings) {
		settings.PairingVersion = 2
	} else {
		err := fanOut(len(c.PKGs), func(i int) error {
			rk, err := c.PKGs[i].NewRound(round)
			if err != nil {
				return fmt.Errorf("coordinator: PKG %d: %w", i, err)
			}
			settings.PKGs[i] = rk
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.announceOpen(settings); err != nil {
		c.dropPlan(settings.Service, settings.Round)
		return nil, err
	}
	return settings, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logger != nil {
		c.Logger.Printf(format, args...)
	}
}

// openPKGRoundV2 attempts to open the round at the optimal-ate tier,
// filling settings.PKGs with v2-signed keys. It reports false — leaving
// the settings untouched for the v1 retry, which is safe because
// NewRound/NewRoundV2 are idempotent per open round and return the same
// master key either way — if any PKG lacks the capability or fails.
func (c *Coordinator) openPKGRoundV2(round uint32, settings *wire.RoundSettings) bool {
	v2 := make([]PairingPKG, len(c.PKGs))
	for i, p := range c.PKGs {
		pp, ok := p.(PairingPKG)
		if !ok {
			c.logf("round %d: PKG %d predates the v2 pairing tier; opening at v1", round, i)
			return false
		}
		v2[i] = pp
	}
	err := fanOut(len(c.PKGs), func(i int) error {
		rk, err := v2[i].NewRoundV2(round)
		if err != nil {
			return fmt.Errorf("coordinator: PKG %d v2: %w", i, err)
		}
		settings.PKGs[i] = rk
		return nil
	})
	if err != nil {
		c.logf("round %d: v2 negotiation failed (%v); opening at v1", round, err)
		return false
	}
	return true
}

// OpenDialingRound announces a dialing round.
func (c *Coordinator) OpenDialingRound(round uint32) (*wire.RoundSettings, error) {
	settings := &wire.RoundSettings{
		Service:      wire.Dialing,
		Round:        round,
		NumMailboxes: c.numMailboxes(wire.Dialing),
	}
	if err := c.openMixRound(settings); err != nil {
		return nil, err
	}
	if err := c.announceOpen(settings); err != nil {
		c.dropPlan(settings.Service, settings.Round)
		return nil, err
	}
	return settings, nil
}

// shardGroup returns position i's CONFIGURED shard set: Mixers[i] (the
// announcer, shard 0) plus Shards[i]. The scheduler's plan may
// substitute spares into slots 1..N-1 for a given round.
func (c *Coordinator) shardGroup(i int) []Mixer {
	group := []Mixer{c.Mixers[i]}
	if i < len(c.Shards) {
		group = append(group, c.Shards[i]...)
	}
	return group
}

// sharded reports whether any chain position has more than one shard.
func (c *Coordinator) sharded() bool {
	for _, extra := range c.Shards {
		if len(extra) > 0 {
			return true
		}
	}
	return false
}

func (c *Coordinator) openMixRound(settings *wire.RoundSettings) (err error) {
	if c.sharded() {
		if c.Sequential {
			return fmt.Errorf("coordinator: sharded positions cannot run the sequential data plane")
		}
		if !c.ChainForward || c.CDNAddr == "" {
			return fmt.Errorf("coordinator: sharded positions require the chain-forward data plane and a CDN address")
		}
	}
	// The scheduler plans the round FIRST: it probes every candidate,
	// drafts spares into benched slots, and picks the merge-role
	// rotation, so a daemon killed between rounds is caught here rather
	// than burning the round mid-chain. The plan is fixed for the
	// round's whole life — CloseRound reuses it verbatim.
	plan := c.planRound(settings.Service, settings.Round)
	defer func() {
		if err != nil {
			c.dropPlan(settings.Service, settings.Round)
		}
	}()
	// The position ANNOUNCERS announce the round keys: clients wrap one
	// onion layer per position, so a shard group shares one key,
	// generated by its announcer (slot 0, whose signing key clients pin)
	// and announced once. The settings are identical whether or not any
	// position is sharded — sharding, spares, and rotation are all
	// invisible to clients.
	keys := make([][]byte, len(c.Mixers))
	settings.Mixers = make([]wire.MixerRoundKey, len(c.Mixers))
	err = fanOut(len(c.Mixers), func(i int) error {
		rk, err := c.Mixers[i].NewRound(settings.Service, settings.Round)
		if err != nil {
			return fmt.Errorf("coordinator: mixer %d: %w", i, err)
		}
		settings.Mixers[i] = rk
		keys[i] = rk.OnionKey
		return nil
	})
	if err != nil {
		return err
	}
	if c.sharded() {
		if err := c.openShardGroups(settings.Service, settings.Round, plan); err != nil {
			return err
		}
	}
	// Every shard of every position needs the onion keys of the
	// POSITIONS after it to wrap its noise; with the keys distributed,
	// every server can generate its round noise concurrently with client
	// intake, so the mix never waits for it. (Sequential mode skips the
	// preparation — it benchmarks the unpipelined chain, where noise
	// generation happens inside Mix.)
	return fanOut(len(c.Mixers), func(i int) error {
		group := plan.group(i)
		return fanOut(len(group), func(s int) error {
			m := group[s]
			if err := m.SetDownstreamKeys(settings.Service, settings.Round, keys[i+1:]); err != nil {
				return fmt.Errorf("coordinator: mixer %d/%d downstream keys: %w", i, s, err)
			}
			if c.Sequential {
				return nil
			}
			if np, ok := m.(NoisePreparer); ok && supportsStreaming(m) {
				if err := np.PrepareNoise(settings.Service, settings.Round, settings.NumMailboxes); err != nil {
					return fmt.Errorf("coordinator: mixer %d/%d prepare noise: %w", i, s, err)
				}
			}
			return nil
		})
	})
}

// openShardGroups prepares every sharded position for the round: the
// group members pull the announcer's round key (one key per position —
// shards are one logical server), and every member learns its shard
// index, group size, and the round's shard network so its noise share
// divides correctly and its key-export surface is gated to the planned
// group. Runs strictly before PrepareNoise.
//
// The key moves along a two-step chain when the merge-lead role is
// rotated away from the announcer: the LEAD pulls it from the announcer
// first, then the remaining members pull from the lead — "key export
// from whichever shard is lead this round". Ordering matters twice
// over: a member's import opens its round (so its layout call must
// follow its import), and a daemon's exportkey allowlist must be
// installed before any peer pulls from it (so the announcer's layout
// call comes first of all, and the lead's precedes the other members').
func (c *Coordinator) openShardGroups(service wire.Service, round uint32, plan *roundPlan) error {
	setShard := func(m Mixer, pos, s, count int, peers []string) error {
		if pm, ok := m.(ShardPeerMixer); ok && len(peers) > 0 {
			if err := pm.SetRoundShardPeers(service, round, s, count, peers); err != nil {
				return fmt.Errorf("coordinator: position %d shard %d layout: %w", pos, s, err)
			}
			return nil
		}
		sm, ok := m.(ShardMixer)
		if !ok || !supportsSharding(m) {
			return fmt.Errorf("coordinator: position %d shard %d does not support shard groups", pos, s)
		}
		if err := sm.SetRoundShard(service, round, s, count); err != nil {
			return fmt.Errorf("coordinator: position %d shard %d layout: %w", pos, s, err)
		}
		return nil
	}
	return fanOut(len(c.Mixers), func(i int) error {
		group := plan.group(i)
		if len(group) == 1 {
			return nil
		}
		announcer, ok := group[0].(ForwardMixer)
		if !ok || !announcer.SupportsForwarding() || !supportsSharding(group[0]) {
			return fmt.Errorf("coordinator: position %d is sharded but its announcer cannot serve a shard group", i)
		}
		peers := plan.peers[i]
		// The announcer owns the round key, so its layout (and with it
		// the export allowlist) installs before anyone pulls.
		if err := setShard(group[0], i, 0, len(group), peers); err != nil {
			return err
		}
		li := plan.lead(i)
		keyAddr := announcer.Addr()
		if li != 0 {
			lm, ok := group[li].(ShardMixer)
			if !ok || !supportsSharding(group[li]) {
				return fmt.Errorf("coordinator: position %d shard %d does not support shard groups", i, li)
			}
			if err := lm.ImportRoundKeyFrom(service, round, announcer.Addr()); err != nil {
				return fmt.Errorf("coordinator: position %d lead %d importing round key: %w", i, li, err)
			}
			if err := setShard(group[li], i, li, len(group), peers); err != nil {
				return err
			}
			lf, ok := group[li].(ForwardMixer)
			if !ok {
				return fmt.Errorf("coordinator: position %d lead %d has no address", i, li)
			}
			keyAddr = lf.Addr()
		}
		// The remaining members are independent of one another (only
		// import-before-layout matters, per member), so they fan out
		// like every other daemon RPC.
		return fanOut(len(group), func(s int) error {
			if s == 0 || s == li {
				return nil
			}
			m := group[s]
			sm, ok := m.(ShardMixer)
			if !ok || !supportsSharding(m) {
				return fmt.Errorf("coordinator: position %d shard %d does not support shard groups", i, s)
			}
			if err := sm.ImportRoundKeyFrom(service, round, keyAddr); err != nil {
				return fmt.Errorf("coordinator: position %d shard %d importing round key: %w", i, s, err)
			}
			return setShard(m, i, s, len(group), peers)
		})
	})
}

// CloseRound performs steps 5-6 for either service: close intake, run the
// data plane, publish mailboxes, and erase round keys.
//
// For add-friend rounds the PKG master keys are erased CONCURRENTLY with
// the mix chain: clients extract identity keys strictly while submitting,
// so once intake closes the erasures can overlap the mix instead of
// serializing after publish (FinishAddFriendRound remains as an explicit,
// idempotent hook for drivers that want a later erasure point).
//
// In chain-forward mode the mailboxes never pass through the coordinator:
// the last daemon publishes them to the CDN at CDNAddr and the returned
// map is nil — clients (and tests) fetch from the CDN.
//
// Otherwise the chain runs as the coordinator-relayed streaming pipeline:
// the entry server hands the batch over in chunks, each mixer stage runs
// in its own goroutine, and stages that implement StreamMixer start
// decrypting while the upstream stage is still emitting. The final
// mailboxes are built sharded across workers and published without
// copying. The returned map shares its byte slices with the CDN store
// (the copy is skipped deliberately — at paper scale it is gigabytes per
// round); callers MUST treat the mailboxes as read-only. Mutating them
// would corrupt what the CDN serves.
func (c *Coordinator) CloseRound(service wire.Service, round uint32) (map[uint32][]byte, error) {
	start := time.Now()
	settings, err := c.Entry.Settings(service, round)
	if err != nil {
		return nil, err
	}
	// The round runs with the plan captured at open — membership, merge
	// rotation, chunk size, and deadline are fixed for the round's life.
	plan := c.planFor(service, round)
	defer c.dropPlan(service, round)
	chunkSize := plan.chunkSize
	if chunkSize <= 0 {
		chunkSize = mixnet.DefaultStreamChunk
	}
	batch, err := c.Entry.CloseRound(service, round)
	if err != nil {
		return nil, err
	}

	// Intake is closed: no further extractions can happen, so the PKG
	// master keys die now, overlapping the chain.
	pkgErased := make(chan struct{})
	if service == wire.AddFriend {
		go func() {
			defer close(pkgErased)
			c.FinishAddFriendRound(round)
		}()
	} else {
		close(pkgErased)
	}
	defer func() { <-pkgErased }()

	// Likewise, once the batch is out of intake the mixers' round keys
	// die with the round whether it succeeds or fails — a failed round
	// is never retried (the next round carries the traffic), and keys
	// that outlive their round are a forward-secrecy hazard.
	defer c.closeMixerRounds(service, round, plan)

	groups, err := c.forwardGroups(plan)
	if err != nil {
		return nil, err
	}

	// Close the other frontends' intakes, in frontend order. On the
	// chain-forward plane a feeder keeps its sub-batch local and will deal
	// it into position 0 itself; otherwise the sub-batch comes back here
	// to be fed (forwarded) or concatenated (relayed) by this process.
	extras := make([]closedFrontend, len(c.Frontends))
	total := len(batch)
	for i, f := range c.Frontends {
		if feeder, ok := f.(FrontendFeeder); ok && groups != nil {
			n, err := feeder.CloseIntake(service, round)
			if err != nil {
				return nil, fmt.Errorf("coordinator: frontend %d close: %w", i+1, err)
			}
			extras[i] = closedFrontend{feeder: feeder}
			total += n
		} else {
			b, err := f.CloseRound(service, round)
			if err != nil {
				return nil, fmt.Errorf("coordinator: frontend %d close: %w", i+1, err)
			}
			extras[i] = closedFrontend{batch: b}
			total += len(b)
		}
	}
	c.SetExpectedVolume(service, total)

	if groups != nil {
		daemons, err := c.runChainForwarded(service, round, settings.NumMailboxes, batch, chunkSize, plan, groups, extras)
		h := RoundHealth{
			Service: service, Round: round, Batch: total,
			Duration: time.Since(start), Forwarded: true, Daemons: daemons,
		}
		if err != nil {
			h.Err = err.Error()
		}
		c.recordHealth(h)
		if err != nil {
			return nil, err
		}
		// The last daemon published straight to the CDN; tell the entry
		// servers so subscribers and entry.events watchers learn the
		// round's mailboxes are available.
		c.announcePublished(service, round)
		return nil, nil
	}

	// Relayed: the sub-batches merge by concatenation in frontend order —
	// the same deterministic order the forwarded plane feeds them in.
	for _, cf := range extras {
		batch = append(batch, cf.batch...)
	}
	final, err := c.runChain(service, round, settings.NumMailboxes, mixnet.ChunkSource(batch, chunkSize), chunkSize)
	if err != nil {
		c.recordHealth(RoundHealth{Service: service, Round: round, Batch: len(batch), Duration: time.Since(start), Err: err.Error()})
		return nil, err
	}
	mailboxes, err := mixnet.BuildMailboxes(service, settings.NumMailboxes, final)
	if err != nil {
		return nil, err
	}
	// The mailbox builder allocated these buffers; hand them to the CDN
	// without a copy, then return a read-only view to the caller.
	published := make(map[uint32][]byte, len(mailboxes))
	for id, data := range mailboxes {
		published[id] = data
	}
	if err := c.CDN.PublishOwned(service, round, published); err != nil {
		return nil, err
	}
	for _, mirror := range c.CDNMirrors {
		_ = cdn.CloneRound(mirror, c.CDN, service, round)
	}
	c.recordHealth(RoundHealth{Service: service, Round: round, Batch: len(batch), Duration: time.Since(start)})
	c.announcePublished(service, round)
	return mailboxes, nil
}

// closeMixerRounds erases the round key on every PLANNED member of every
// position (drafted spares included), fanning the calls out (each is a
// network round trip against daemons). Erasure failures are the daemons'
// problem — CloseRound is fire-and-forget, like the in-process API.
func (c *Coordinator) closeMixerRounds(service wire.Service, round uint32, plan *roundPlan) {
	_ = fanOut(len(c.Mixers), func(i int) error {
		for _, m := range plan.group(i) {
			m.CloseRound(service, round)
		}
		return nil
	})
}

// forwardGroups returns the chain as per-position ForwardMixer shard
// groups when the chain-forward data plane is usable: ChainForward is
// set, a CDN publish address exists, and every daemon supports streaming
// and forwarding (plus the shard surface wherever a position is
// sharded). An unsharded fleet that can't forward returns nil and the
// round falls back to the coordinator-relayed pipeline; a SHARDED fleet
// that can't forward is an error — the noise was divided at round open,
// so no other data plane can run this round.
func (c *Coordinator) forwardGroups(plan *roundPlan) ([][]ForwardMixer, error) {
	sharded := c.sharded()
	usable := c.ChainForward && !c.Sequential && c.CDNAddr != "" && len(c.Mixers) > 0
	if !usable {
		if sharded {
			return nil, fmt.Errorf("coordinator: sharded positions require the chain-forward data plane")
		}
		return nil, nil
	}
	groups := make([][]ForwardMixer, len(c.Mixers))
	for i := range c.Mixers {
		group := plan.group(i)
		groups[i] = make([]ForwardMixer, len(group))
		for s, m := range group {
			fm, isForward := m.(ForwardMixer)
			_, isStream := m.(StreamMixer)
			ok := isForward && isStream && fm.SupportsForwarding() && supportsStreaming(m)
			if ok && sharded && !supportsSharding(m) {
				ok = false
			}
			if !ok {
				if sharded {
					return nil, fmt.Errorf("coordinator: position %d shard %d cannot serve a sharded chain-forward round", i, s)
				}
				return nil, nil
			}
			groups[i][s] = fm
		}
	}
	return groups, nil
}

// closedFrontend is one additional frontend's closed intake: either a
// feeder that kept its sub-batch local (chain-forward) or the pulled
// sub-batch itself.
type closedFrontend struct {
	feeder FrontendFeeder
	batch  [][]byte
}

// routedDaemon is one daemon's place in a forwarded round's route graph.
type routedDaemon struct {
	pos, shard int
	fm         ForwardMixer
}

func flattenGroups(groups [][]ForwardMixer) []routedDaemon {
	var all []routedDaemon
	for i, group := range groups {
		for s, fm := range group {
			all = append(all, routedDaemon{pos: i, shard: s, fm: fm})
		}
	}
	return all
}

// runChainForwarded drives the chain-forward data plane: open a route on
// every daemon (back to front, so each successor is routed before its
// predecessor could possibly forward), deal the entry batch across the
// first position's shard set, then wait on every daemon's completion.
// Routes announce the shard topology per position: every member learns
// its shard index and group size, non-merge shards learn their group's
// merge address, and each merge server learns the successor position's
// FULL shard set. The merge/build-lead role lands on the plan's rotated
// lead — a role, not a machine; the key-derived permutation makes the
// round's output independent of which member hosts it. On the first
// failure the round is aborted on every shard of every position —
// daemons also propagate aborts down the chain and across their groups
// themselves, so a mid-chain death cannot wedge its successors.
//
// The returned per-daemon stats (from mix.round.wait) feed the round
// health record even when the round fails.
func (c *Coordinator) runChainForwarded(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte, chunkSize int, plan *roundPlan, groups [][]ForwardMixer, extras []closedFrontend) ([]DaemonRoundStats, error) {
	numUpstream := 1 + len(extras)
	all := flattenGroups(groups)
	abortAll := func(reason error) {
		_ = fanOut(len(all), func(i int) error {
			return all[i].fm.AbortRound(service, round, reason.Error())
		})
	}

	for i := len(groups) - 1; i >= 0; i-- {
		group := groups[i]
		var successors []string
		cdnAddr := ""
		var buildShards []string
		if i == len(groups)-1 {
			cdnAddr = c.CDNAddr
			// Sharded mailbox building: when the LAST position is a multi-
			// shard group and every member advertises the build surface,
			// the merge server deals the post-shuffle batch by mailbox ID
			// and each shard publishes its own slice straight to the CDN —
			// the merged round's mailbox bytes never funnel through one
			// machine. Any pre-build daemon in the group falls the whole
			// group back to merge-builds-all (rolling upgrade).
			if len(group) > 1 {
				capable := true
				for _, fm := range group {
					if !supportsShardedBuild(fm) {
						capable = false
						break
					}
				}
				if capable {
					for _, fm := range group {
						buildShards = append(buildShards, fm.Addr())
					}
				}
			}
		} else {
			for _, fm := range groups[i+1] {
				successors = append(successors, fm.Addr())
			}
		}
		// Positions are routed back-to-front (a successor must be routed
		// before its predecessor could forward), but the shards WITHIN a
		// position are independent and fan out.
		li := plan.lead(i)
		err := fanOut(len(group), func(s int) error {
			spec := RouteSpec{
				NumMailboxes: numMailboxes,
				ChunkSize:    chunkSize,
				ShardIndex:   s,
				ShardCount:   len(group),
				DeadlineMs:   plan.deadlineMs,
			}
			if i == 0 && numUpstream > 1 {
				// Position 0 is fed by every frontend: its intake stays
				// open until all numUpstream feeders have sent their
				// upstream-tagged end (PR 3's counted fan-in).
				spec.NumUpstream = numUpstream
			}
			if s == li {
				// This round's lead hosts the group's merge: the
				// position's post-shuffle output leaves the group from
				// here. (BuildShards stays in shard order — members
				// identify themselves by their own shard index.)
				spec.Successors = successors
				spec.CDNAddr = cdnAddr
				spec.BuildShards = buildShards
			} else {
				spec.MergeAddr = group[li].Addr()
				if buildShards != nil {
					// A build shard publishes its dealt mailbox-ID slice
					// itself, so it needs the CDN address too.
					spec.CDNAddr = cdnAddr
				}
			}
			if err := group[s].OpenRoute(service, round, spec); err != nil {
				return fmt.Errorf("coordinator: routing mixer %d/%d: %w", i, s, err)
			}
			return nil
		})
		if err != nil {
			abortAll(err)
			return nil, err
		}
	}

	// Frontend 0's batch is the one payload this process still moves: the
	// coordinator owns its entry server, so this hop is unavoidable and
	// costs one sub-batch-width, not one per chain hop.
	if err := c.feedFirstGroup(service, round, numMailboxes, batch, chunkSize, 0, numUpstream, plan.group(0)); err != nil {
		err = fmt.Errorf("coordinator: feeding position 0: %w", err)
		abortAll(err)
		return nil, err
	}
	// The other frontends feed after frontend 0, sequentially and in
	// frontend order, so the merged intake order at every shard is
	// deterministic: a fixed-seed N-frontend round reproduces the
	// single-frontend byte stream exactly.
	if len(extras) > 0 {
		var shardAddrs []string
		for _, fm := range groups[0] {
			shardAddrs = append(shardAddrs, fm.Addr())
		}
		for k, cf := range extras {
			var err error
			if cf.feeder != nil {
				err = cf.feeder.FeedBatch(service, round, numMailboxes, chunkSize, shardAddrs, k+1)
			} else {
				err = c.feedFirstGroup(service, round, numMailboxes, cf.batch, chunkSize, k+1, numUpstream, plan.group(0))
			}
			if err != nil {
				err = fmt.Errorf("coordinator: feeding position 0 as upstream %d: %w", k+1, err)
				abortAll(err)
				return nil, err
			}
		}
	}

	daemons := make([]DaemonRoundStats, len(all))
	errs := make([]error, len(all))
	var abortOnce sync.Once
	var wg sync.WaitGroup
	wg.Add(len(all))
	for i, rd := range all {
		go func(i int, rd routedDaemon) {
			defer wg.Done()
			stats, err := rd.fm.WaitRound(service, round)
			daemons[i] = DaemonRoundStats{Position: rd.pos, Shard: rd.shard, Addr: rd.fm.Addr(), Stats: stats}
			if err != nil {
				daemons[i].Err = err.Error()
				errs[i] = err
				// First failure: abort everywhere, which releases every
				// other daemon's waiter too.
				abortOnce.Do(func() {
					abortAll(fmt.Errorf("mixer %d/%d: %v", rd.pos, rd.shard, err))
				})
			}
		}(i, rd)
	}
	wg.Wait()

	// Prefer a root-cause error over propagated "aborted:" echoes.
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("coordinator: forwarded chain, mixer %d/%d: %w", all[i].pos, all[i].shard, err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if !strings.HasPrefix(err.Error(), "aborted:") {
			return daemons, wrapped
		}
	}
	return daemons, firstErr
}

// upstreamEnder is the fan-in end surface of a StreamMixer: a stream end
// tagged with WHICH of a route's NumUpstream feeders finished, so the
// daemon's counted intake closes exactly once per feeder.
// rpc.MixerClient implements it (mix.stream.end with an upstream index).
type upstreamEnder interface {
	StreamEndAs(service wire.Service, round uint32, upstream int) ([][]byte, error)
}

// feedFirstGroup deals one frontend's closed sub-batch across the first
// position's PLANNED shard set, chunk i to shard i mod N — the same
// deterministic deal the daemons use between positions. Every shard gets
// its own stream; an unsharded first position degenerates to the
// single-stream feed. With more than one upstream feeder the begins JOIN
// the streams the first feeder opened and the ends carry this feeder's
// upstream index for the shards' counted fan-in.
func (c *Coordinator) feedFirstGroup(service wire.Service, round uint32, numMailboxes uint32, batch [][]byte, chunkSize, upstream, numUpstream int, group []Mixer) error {
	first := make([]StreamMixer, len(group))
	for s, m := range group {
		sm, ok := m.(StreamMixer)
		if !ok {
			return fmt.Errorf("coordinator: position 0 shard %d cannot stream", s)
		}
		first[s] = sm
	}
	for s, sm := range first {
		if err := sm.StreamBegin(service, round, numMailboxes); err != nil {
			return fmt.Errorf("coordinator: opening stream to shard %d: %w", s, err)
		}
	}
	for i, lo := 0, 0; lo < len(batch); i, lo = i+1, lo+chunkSize {
		hi := lo + chunkSize
		if hi > len(batch) {
			hi = len(batch)
		}
		if err := first[i%len(first)].StreamChunk(service, round, batch[lo:hi]); err != nil {
			return err
		}
	}
	for s, sm := range first {
		if numUpstream > 1 {
			ue, ok := sm.(upstreamEnder)
			if !ok {
				return fmt.Errorf("coordinator: position 0 shard %d cannot take an upstream-tagged end", s)
			}
			if _, err := ue.StreamEndAs(service, round, upstream); err != nil {
				return fmt.Errorf("coordinator: closing stream to shard %d as upstream %d: %w", s, upstream, err)
			}
			continue
		}
		if _, err := sm.StreamEnd(service, round); err != nil {
			return fmt.Errorf("coordinator: closing stream to shard %d: %w", s, err)
		}
	}
	return nil
}

// runChain streams the batch through the mix chain. Stages run
// concurrently; mixers without streaming support are driven by a
// full-batch Mix call inside their stage, which still overlaps with the
// other stages' noise generation and emission.
func (c *Coordinator) runChain(service wire.Service, round uint32, numMailboxes uint32, source <-chan [][]byte, chunkSize int) ([][]byte, error) {
	stages := make([]mixnet.ChunkMixer, len(c.Mixers))
	for i, m := range c.Mixers {
		if sm, ok := m.(StreamMixer); ok && !c.Sequential && supportsStreaming(m) {
			stages[i] = sm
		} else {
			stages[i] = &bufferedStage{m: m}
		}
	}
	out, err := mixnet.RunPipeline(stages, service, round, numMailboxes, source, chunkSize)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return out, nil
}

// bufferedStage adapts a full-batch Mixer to the streaming pipeline: it
// accumulates chunks and runs Mix once at StreamEnd. Used for remote
// daemons that predate the streaming RPC surface, and for benchmarking the
// unpipelined chain.
type bufferedStage struct {
	m            Mixer
	numMailboxes uint32
	batch        [][]byte
}

func (b *bufferedStage) StreamBegin(service wire.Service, round uint32, numMailboxes uint32) error {
	b.numMailboxes = numMailboxes
	return nil
}

func (b *bufferedStage) StreamChunk(service wire.Service, round uint32, chunk [][]byte) error {
	b.batch = append(b.batch, chunk...)
	return nil
}

func (b *bufferedStage) StreamEnd(service wire.Service, round uint32) ([][]byte, error) {
	return b.m.Mix(service, round, b.numMailboxes, b.batch)
}

func (b *bufferedStage) StreamAbort(service wire.Service, round uint32) error {
	b.batch = nil
	return nil
}

// FinishAddFriendRound erases every PKG's master secret for the round
// (§4.4: "after a preconfigured amount of time or after all users have
// obtained their private keys"). CloseRound already runs this concurrently
// with the mix chain — all extractions happen inside the submission window
// — so calling it again is an idempotent no-op; it remains exported for
// drivers that open rounds without closing them. The erasures fan out:
// against remote PKG daemons each is a network round trip.
func (c *Coordinator) FinishAddFriendRound(round uint32) {
	_ = fanOut(len(c.PKGs), func(i int) error {
		c.PKGs[i].CloseRound(round)
		return nil
	})
}
