package entry

import (
	"bytes"
	"errors"
	"testing"

	"alpenhorn/internal/wire"
)

func testSettings(round uint32) *wire.RoundSettings {
	return &wire.RoundSettings{
		Service:      wire.Dialing,
		Round:        round,
		NumMailboxes: 1,
		Mixers: []wire.MixerRoundKey{
			{OnionKey: make([]byte, 32), Sig: make([]byte, 64)},
			{OnionKey: make([]byte, 32), Sig: make([]byte, 64)},
		},
	}
}

func TestRoundLifecycle(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Settings(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 {
		t.Fatal("wrong settings")
	}

	onion := make([]byte, wire.OnionSize(wire.Dialing, 2))
	if err := s.Submit(wire.Dialing, 1, onion); err != nil {
		t.Fatal(err)
	}
	if s.BatchSize(wire.Dialing, 1) != 1 {
		t.Fatal("batch size wrong")
	}
	batch, err := s.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || !bytes.Equal(batch[0], onion) {
		t.Fatal("batch contents wrong")
	}
	// After close, submissions fail.
	if err := s.Submit(wire.Dialing, 1, onion); err == nil {
		t.Fatal("submission accepted after close")
	}
	// Double close fails.
	if _, err := s.CloseRound(wire.Dialing, 1); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	// Unknown round.
	if err := s.Submit(wire.Dialing, 99, make([]byte, 10)); err == nil {
		t.Fatal("unknown round accepted")
	}
	// Wrong size: metadata-safe batching requires exact sizes.
	if err := s.Submit(wire.Dialing, 1, make([]byte, 10)); err == nil {
		t.Fatal("wrong-size onion accepted")
	}
	if err := s.Submit(wire.Dialing, 1, make([]byte, wire.OnionSize(wire.Dialing, 2)+1)); err == nil {
		t.Fatal("oversized onion accepted")
	}
}

func TestMaxBatch(t *testing.T) {
	s := New()
	s.MaxBatch = 2
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	onion := make([]byte, wire.OnionSize(wire.Dialing, 2))
	for i := 0; i < 2; i++ {
		if err := s.Submit(wire.Dialing, 1, onion); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow is an admission signal, not a generic failure: clients
	// detect it with errors.Is and retry next round.
	if err := s.Submit(wire.Dialing, 1, onion); !errors.Is(err, ErrRoundFull) {
		t.Fatalf("batch overflow: got %v, want ErrRoundFull", err)
	}
	// The deferral does not disturb the round: the admitted batch closes
	// normally at its cap.
	batch, err := s.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch size %d after deferrals, want 2", len(batch))
	}
}

func TestSubscribeAnnouncements(t *testing.T) {
	s := New()
	ch := s.Subscribe()
	if err := s.OpenRound(testSettings(5)); err != nil {
		t.Fatal(err)
	}
	select {
	case ann := <-ch:
		if ann.Settings.Round != 5 {
			t.Fatalf("announced round %d", ann.Settings.Round)
		}
	default:
		t.Fatal("no announcement delivered")
	}
}

func TestDuplicateOpenRejected(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenRound(testSettings(1)); err == nil {
		t.Fatal("duplicate open accepted")
	}
}

func TestBatchIsCopied(t *testing.T) {
	// The entry server must own its copy: a client mutating its buffer
	// after Submit must not corrupt the batch.
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	onion := make([]byte, wire.OnionSize(wire.Dialing, 2))
	onion[0] = 42
	if err := s.Submit(wire.Dialing, 1, onion); err != nil {
		t.Fatal(err)
	}
	onion[0] = 99
	batch, _ := s.CloseRound(wire.Dialing, 1)
	if batch[0][0] != 42 {
		t.Fatal("batch aliases caller buffer")
	}
}
