package entry

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"alpenhorn/internal/wire"
)

func testSettings(round uint32) *wire.RoundSettings {
	return &wire.RoundSettings{
		Service:      wire.Dialing,
		Round:        round,
		NumMailboxes: 1,
		Mixers: []wire.MixerRoundKey{
			{OnionKey: make([]byte, 32), Sig: make([]byte, 64)},
			{OnionKey: make([]byte, 32), Sig: make([]byte, 64)},
		},
	}
}

func TestRoundLifecycle(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Settings(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 {
		t.Fatal("wrong settings")
	}

	onion := make([]byte, wire.OnionSize(wire.Dialing, 2))
	if err := s.Submit(wire.Dialing, 1, onion); err != nil {
		t.Fatal(err)
	}
	if s.BatchSize(wire.Dialing, 1) != 1 {
		t.Fatal("batch size wrong")
	}
	batch, err := s.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || !bytes.Equal(batch[0], onion) {
		t.Fatal("batch contents wrong")
	}
	// After close, submissions fail.
	if err := s.Submit(wire.Dialing, 1, onion); err == nil {
		t.Fatal("submission accepted after close")
	}
	// Double close fails.
	if _, err := s.CloseRound(wire.Dialing, 1); err == nil {
		t.Fatal("double close accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	// Unknown round.
	if err := s.Submit(wire.Dialing, 99, make([]byte, 10)); err == nil {
		t.Fatal("unknown round accepted")
	}
	// Wrong size: metadata-safe batching requires exact sizes.
	if err := s.Submit(wire.Dialing, 1, make([]byte, 10)); err == nil {
		t.Fatal("wrong-size onion accepted")
	}
	if err := s.Submit(wire.Dialing, 1, make([]byte, wire.OnionSize(wire.Dialing, 2)+1)); err == nil {
		t.Fatal("oversized onion accepted")
	}
}

func TestMaxBatch(t *testing.T) {
	s := New()
	s.MaxBatch = 2
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	onion := make([]byte, wire.OnionSize(wire.Dialing, 2))
	for i := 0; i < 2; i++ {
		if err := s.Submit(wire.Dialing, 1, onion); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow is an admission signal, not a generic failure: clients
	// detect it with errors.Is and retry next round.
	if err := s.Submit(wire.Dialing, 1, onion); !errors.Is(err, ErrRoundFull) {
		t.Fatalf("batch overflow: got %v, want ErrRoundFull", err)
	}
	// The deferral does not disturb the round: the admitted batch closes
	// normally at its cap.
	batch, err := s.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch size %d after deferrals, want 2", len(batch))
	}
}

func TestSubscribeAnnouncements(t *testing.T) {
	s := New()
	ch := s.Subscribe()
	if err := s.OpenRound(testSettings(5)); err != nil {
		t.Fatal(err)
	}
	s.AnnouncePublished(wire.Dialing, 5)
	var got []Announcement
	for len(got) < 2 {
		select {
		case ann := <-ch:
			got = append(got, ann)
		default:
			t.Fatalf("only %d announcements delivered", len(got))
		}
	}
	if got[0].Kind != RoundOpen || got[0].Round != 5 || got[0].Settings.Round != 5 {
		t.Fatalf("open announcement: %+v", got[0])
	}
	if got[1].Kind != RoundPublished || got[1].Round != 5 {
		t.Fatalf("published announcement: %+v", got[1])
	}
	// Cursors are consecutive: no gap means nothing was missed.
	if got[1].Cursor != got[0].Cursor+1 {
		t.Fatalf("cursors not consecutive: %d then %d", got[0].Cursor, got[1].Cursor)
	}
}

// TestSubscriberGapDetectAndRefill pins the fix for the old silent-drop
// behaviour: a slow subscriber that misses announcements sees a cursor
// jump on its next delivery and refills the gap with EventsSince.
func TestSubscriberGapDetectAndRefill(t *testing.T) {
	s := New()
	ch := s.Subscribe()
	// Overflow the 64-slot subscriber buffer without draining it.
	for r := uint32(1); r <= 70; r++ {
		if err := s.OpenRound(testSettings(r)); err != nil {
			t.Fatal(err)
		}
	}
	last := uint64(0)
	delivered := 0
	for {
		select {
		case ann := <-ch:
			if last != 0 && ann.Cursor != last+1 {
				t.Fatalf("buffered announcements not consecutive: %d after %d", ann.Cursor, last)
			}
			last = ann.Cursor
			delivered++
			continue
		default:
		}
		break
	}
	if delivered != 64 {
		t.Fatalf("delivered %d announcements, want the 64 buffered", delivered)
	}
	// The subscriber drained its buffer; announcements 65..70 were
	// dropped. The NEXT delivery exposes the gap as a cursor jump.
	if err := s.OpenRound(testSettings(71)); err != nil {
		t.Fatal(err)
	}
	var gapLo, gapHi uint64
	select {
	case ann := <-ch:
		if ann.Cursor == last+1 {
			t.Fatal("expected a cursor jump after dropped announcements")
		}
		gapLo, gapHi = last, ann.Cursor
	default:
		t.Fatal("no announcement after refilling the buffer")
	}
	// Refill: every missed announcement is still in the retained log.
	refill, next, gap := s.EventsSince(gapLo, 0)
	if gap {
		t.Fatal("refill within the retained window reported a gap")
	}
	if uint64(len(refill)) < gapHi-gapLo-1 {
		t.Fatalf("refill returned %d events, gap spans %d", len(refill), gapHi-gapLo-1)
	}
	for i, ann := range refill {
		if ann.Cursor != gapLo+uint64(i)+1 {
			t.Fatalf("refill cursor %d at index %d, want %d", ann.Cursor, i, gapLo+uint64(i)+1)
		}
	}
	if next != refill[len(refill)-1].Cursor {
		t.Fatal("resume cursor does not match last refilled event")
	}
}

func TestStatusFoldsEvents(t *testing.T) {
	s := New()
	if st := s.Status(wire.Dialing); st.CurrentOpen != 0 || st.LatestPublished != 0 {
		t.Fatalf("fresh status: %+v", st)
	}
	for r := uint32(1); r <= 3; r++ {
		if err := s.OpenRound(testSettings(r)); err != nil {
			t.Fatal(err)
		}
	}
	s.AnnouncePublished(wire.Dialing, 2)
	st := s.Status(wire.Dialing)
	if st.CurrentOpen != 3 || st.LatestPublished != 2 {
		t.Fatalf("status: %+v, want open 3 / published 2", st)
	}
}

// TestEventsSinceCoalesces pins the late-joiner behaviour: a zero cursor
// (or one that fell off the retained window) gets the newest event per
// (service, kind) instead of a replay of the whole log.
func TestEventsSinceCoalesces(t *testing.T) {
	s := New()
	for r := uint32(1); r <= eventLogSize+50; r++ {
		if err := s.OpenRound(testSettings(r)); err != nil {
			t.Fatal(err)
		}
		s.AnnouncePublished(wire.Dialing, r)
	}
	// Fresh consumer: snapshot, no gap flag.
	events, next, gap := s.EventsSince(0, 0)
	if gap {
		t.Fatal("fresh consumer flagged as gapped")
	}
	if len(events) != 2 {
		t.Fatalf("coalesced snapshot has %d events, want 2", len(events))
	}
	byKind := map[EventKind]uint32{}
	for _, e := range events {
		byKind[e.Kind] = e.Round
	}
	if byKind[RoundOpen] != eventLogSize+50 || byKind[RoundPublished] != eventLogSize+50 {
		t.Fatalf("snapshot rounds: %v", byKind)
	}
	if next != s.events[len(s.events)-1].Cursor {
		t.Fatal("snapshot resume cursor is not the newest")
	}
	// A cursor that fell off the window IS flagged as a gap.
	if _, _, gap := s.EventsSince(1, 0); !gap {
		t.Fatal("evicted cursor not flagged as gap")
	}
	// Resuming from next returns nothing new.
	if events, _, _ := s.EventsSince(next, 0); len(events) != 0 {
		t.Fatalf("resume from head returned %d events", len(events))
	}
}

// TestEventsSinceStaleFutureCursor pins restart behaviour: a cursor from a
// previous log incarnation (larger than anything in the fresh log) gets
// the coalesced snapshot and the CURRENT head cursor, instead of parking
// until the new log outgrows the stale number.
func TestEventsSinceStaleFutureCursor(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	events, next, gap := s.EventsSince(9999, 0)
	if !gap {
		t.Fatal("stale future cursor not flagged as gap")
	}
	if len(events) != 1 || events[0].Round != 1 {
		t.Fatalf("stale-cursor snapshot: %+v", events)
	}
	if next != events[0].Cursor {
		t.Fatalf("resume cursor %d, want current head %d", next, events[0].Cursor)
	}
}

func TestWaitEvents(t *testing.T) {
	s := New()
	done := make(chan []Announcement, 1)
	go func() {
		events, _, _ := s.WaitEvents(context.Background(), 0, 0)
		done <- events
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case events := <-done:
		if len(events) != 1 || events[0].Round != 1 || events[0].Kind != RoundOpen {
			t.Fatalf("waited events: %+v", events)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitEvents did not wake on OpenRound")
	}

	// Context cancellation unparks with no events and an unchanged cursor.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	events, next, _ := s.WaitEvents(ctx, 1, 0)
	if len(events) != 0 || next != 1 {
		t.Fatalf("cancelled wait: %d events, next %d", len(events), next)
	}
}

func TestDuplicateOpenRejected(t *testing.T) {
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenRound(testSettings(1)); err == nil {
		t.Fatal("duplicate open accepted")
	}
}

func TestBatchIsCopied(t *testing.T) {
	// The entry server must own its copy: a client mutating its buffer
	// after Submit must not corrupt the batch.
	s := New()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	onion := make([]byte, wire.OnionSize(wire.Dialing, 2))
	onion[0] = 42
	if err := s.Submit(wire.Dialing, 1, onion); err != nil {
		t.Fatal(err)
	}
	onion[0] = 99
	batch, _ := s.CloseRound(wire.Dialing, 1)
	if batch[0][0] != 42 {
		t.Fatal("batch aliases caller buffer")
	}
}
