package entry

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"alpenhorn/internal/wire"
)

// awaitCondition polls until cond holds or the deadline passes.
func awaitCondition(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaiterFlatGoroutines is the fan-out core's scaling pin: 10k
// registered waiters cost the server O(1) goroutines (the single fan-out
// walker), every waiter still observes each announcement, and the walker
// exits when the last waiter deregisters.
func TestWaiterFlatGoroutines(t *testing.T) {
	const numWaiters = 10_000
	s := New()
	baseline := runtime.NumGoroutine()

	waiters := make([]*Waiter, numWaiters)
	for i := range waiters {
		waiters[i] = s.Register(0)
	}
	if n := s.Waiters(); n != numWaiters {
		t.Fatalf("registered %d waiters, server counts %d", numWaiters, n)
	}
	// O(1): registration added the one walker goroutine, nothing per
	// waiter (allow a little slack for unrelated runtime goroutines).
	if n := runtime.NumGoroutine(); n > baseline+3 {
		t.Fatalf("%d goroutines serving %d waiters, baseline %d — want O(1) growth", n, numWaiters, baseline)
	}

	passes := s.fanoutPasses.Load()
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	awaitCondition(t, "fan-out walk", func() bool { return s.fanoutPasses.Load() > passes })

	// One walk woke all 10k waiters; each drains the event at its own
	// pace with Poll, with no goroutine of its own.
	for i, w := range waiters {
		select {
		case <-w.Wake():
		default:
			t.Fatalf("waiter %d not woken by the fan-out walk", i)
		}
		events, next, gap := w.Poll(0)
		if len(events) != 1 || events[0].Round != 1 || gap {
			t.Fatalf("waiter %d polled %d events (gap=%v), want the open announcement", i, len(events), gap)
		}
		if w.Cursor() != next {
			t.Fatalf("waiter %d cursor %d not advanced to %d", i, w.Cursor(), next)
		}
	}
	if n := runtime.NumGoroutine(); n > baseline+3 {
		t.Fatalf("%d goroutines after announcing to %d waiters, baseline %d", n, numWaiters, baseline)
	}

	for _, w := range waiters {
		w.Close()
	}
	if n := s.Waiters(); n != 0 {
		t.Fatalf("%d waiters left after closing all", n)
	}
	awaitCondition(t, "fan-out goroutine exit", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}

// TestWaiterSelectLoop exercises the goroutine-free consumer shape: Wake
// in a caller-owned select, Poll to drain, cursor advancing across
// multiple announcements with no missed wakeups.
func TestWaiterSelectLoop(t *testing.T) {
	s := New()
	w := s.Register(0)
	defer w.Close()

	var got []Announcement
	for r := uint32(1); r <= 5; r++ {
		if err := s.OpenRound(testSettings(r)); err != nil {
			t.Fatal(err)
		}
		select {
		case <-w.Wake():
		case <-time.After(2 * time.Second):
			t.Fatalf("no wake for round %d", r)
		}
		events, _, gap := w.Poll(0)
		if gap {
			t.Fatalf("gap at round %d", r)
		}
		got = append(got, events...)
	}
	if len(got) != 5 {
		t.Fatalf("drained %d events, want 5", len(got))
	}
	for i, ann := range got {
		if ann.Round != uint32(i+1) || ann.Kind != RoundOpen {
			t.Fatalf("event %d: %+v", i, ann)
		}
	}
}

// TestWaiterAwaitParksAndResumes: Await parks the caller until an
// announcement arrives, and a cancelled context unparks it with the
// cursor unchanged — WaitEvents semantics on a held waiter.
func TestWaiterAwaitParksAndResumes(t *testing.T) {
	s := New()
	w := s.Register(0)
	defer w.Close()

	done := make(chan []Announcement, 1)
	go func() {
		events, _, _ := w.Await(context.Background(), 0)
		done <- events
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.OpenRound(testSettings(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case events := <-done:
		if len(events) != 1 || events[0].Round != 1 {
			t.Fatalf("awaited events: %+v", events)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Await did not wake on OpenRound")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	events, next, _ := w.Await(ctx, 0)
	if len(events) != 0 || next != w.Cursor() {
		t.Fatalf("cancelled await: %d events, next %d, cursor %d", len(events), next, w.Cursor())
	}
}

// TestSubscribeDropsCounted: announcements that overflow a subscriber's
// buffer are counted server-side in the service's status, not just
// detectable client-side via the cursor gap.
func TestSubscribeDropsCounted(t *testing.T) {
	s := New()
	s.Subscribe() // never drained: overflows at 64
	const opens = 70
	for r := uint32(1); r <= opens; r++ {
		if err := s.OpenRound(testSettings(r)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Status(wire.Dialing)
	if want := uint64(opens - 64); st.EventDrops != want {
		t.Fatalf("status counts %d dropped events, want %d", st.EventDrops, want)
	}
	if st.CurrentOpen != opens {
		t.Fatalf("drop counting disturbed status fold: %+v", st)
	}
	// A service with no dropped announcements reports zero.
	if st := s.Status(wire.AddFriend); st.EventDrops != 0 {
		t.Fatalf("add-friend drops %d, want 0", st.EventDrops)
	}
}

// BenchmarkEventFanout measures the per-announcement cost of the
// single-writer fan-out walk at 10k–100k registered waiters, and reports
// the goroutine growth from serving them (which must stay flat at 1 —
// the walker).
func BenchmarkEventFanout(b *testing.B) {
	for _, numWaiters := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("waiters=%d", numWaiters), func(b *testing.B) {
			s := New()
			baseline := runtime.NumGoroutine()
			waiters := make([]*Waiter, numWaiters)
			for i := range waiters {
				waiters[i] = s.Register(0)
			}
			b.ReportMetric(float64(runtime.NumGoroutine()-baseline), "goroutines")

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				passes := s.fanoutPasses.Load()
				s.AnnouncePublished(wire.Dialing, uint32(i+1))
				for s.fanoutPasses.Load() == passes {
					runtime.Gosched()
				}
			}
			b.StopTimer()
			for _, w := range waiters {
				w.Close()
			}
		})
	}
}
