// Package entry implements Alpenhorn's entry server (§7).
//
// The entry server is UNTRUSTED: it manages client connections, announces
// round settings, and aggregates each round's client onions into a single
// batch for the mixnet. It sees only fixed-size ciphertexts — one per
// client per round, real or cover — so a malicious entry server learns
// nothing beyond liveness, and a censoring one can only mount denial of
// service (which Alpenhorn explicitly does not defend against, §3.2).
//
// # Event log
//
// Round progress is published as an EVENT LOG: every round-opened and
// round-published announcement gets a monotonic cursor. Consumers follow
// it three ways, all built on the same log:
//
//   - Subscribe returns a buffered channel of announcements. A slow
//     subscriber misses deliveries rather than blocking the system; every
//     announcement carries its cursor, so a gap is DETECTABLE (cursor
//     jump) and refillable with EventsSince, and the server counts the
//     drops per service (RoundStatus.EventDrops).
//   - EventsSince(cursor, max) replays retained events after a cursor.
//     When the cursor has fallen off the retained window (or is zero — a
//     fresh consumer), the reply COALESCES to the newest event per
//     (service, kind): round progress is monotonic, so the latest open
//     and latest published round are all a late joiner needs.
//   - Register returns a Waiter — the push primitive described below.
//     WaitEvents is its one-shot convenience form (register, await,
//     deregister), which the in-process sim transport rides on.
//
// # Single-writer fan-out
//
// The push path is built for very large client counts: delivering an
// announcement to N tracked clients must not cost N parked goroutines.
// A consumer registers a Waiter — a small struct holding its log cursor
// and a 1-slot wake channel — and ONE fan-out goroutine per server (so
// one per frontend process, started when the first waiter registers and
// exited when the last deregisters) walks the waiter list after each
// announcement, tapping the wake channel of every waiter whose cursor is
// behind the new head. Waking any number of waiters therefore costs one
// list walk on one goroutine — a non-blocking channel send per waiter —
// instead of a scheduler wakeup storm, and a waiter consumes events at
// its own pace with Poll (or parks its own goroutine in Await, if it has
// one to spare). The wake channel never carries data, so a slow waiter
// costs one bit of state, never memory growth.
//
// # Replication
//
// A deployment runs N entry frontends against one coordinator, and the
// coordinator is the log's SINGLE WRITER: it announces every round open
// and publish to every frontend in the same order, so all replicas stamp
// identical cursors and the frontends share one cursor namespace. A
// client that loses its frontend mid-round can resume on any other
// frontend from the cursor it already holds — no snapshot reset, no
// re-delivered or missed announcements. Intake is N-way: each frontend
// admits its own sub-batch, and the batches are merged at round close
// (concatenated in frontend order, or dealt into the first mix position's
// counted fan-in when the data plane is chain-forwarded).
package entry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

type roundState struct {
	settings  *wire.RoundSettings
	onionSize int
	batch     [][]byte
	open      bool
}

// EventKind distinguishes round-progress announcements.
type EventKind int

const (
	// RoundOpen: the round is announced and accepting submissions.
	RoundOpen EventKind = iota + 1
	// RoundPublished: the round's mailboxes are available on the CDN.
	RoundPublished
)

// Announcement is one entry in the round-progress event log. Cursor is
// monotonically increasing across all services; subscribers use it to
// detect missed announcements and to resume (EventsSince / WaitEvents).
// Settings is populated for RoundOpen announcements delivered in-process;
// transports may drop it (clients fetch and verify settings separately).
type Announcement struct {
	Cursor   uint64
	Service  wire.Service
	Round    uint32
	Kind     EventKind
	Settings *wire.RoundSettings
}

// RoundStatus is a service's round progress at a point in time: the
// newest announced round and the newest round whose mailboxes are
// published. Zero means "none yet". It is the poll-based view of the
// event log, kept for clients talking to frontends without entry.events.
// EventDrops counts announcements for this service that overflowed a
// subscriber's buffer — the server-side view of the gaps subscribers
// detect via cursor jumps.
type RoundStatus struct {
	CurrentOpen     uint32 `json:"current_open"`
	LatestPublished uint32 `json:"latest_published"`
	EventDrops      uint64 `json:"event_drops,omitempty"`
}

// eventLogSize bounds the retained event window. Consumers further behind
// than this get the coalesced latest-per-kind snapshot, which (round
// progress being monotonic) loses nothing they could still act on.
const eventLogSize = 256

// Server is an entry server. It is safe for concurrent use.
type Server struct {
	mu     sync.Mutex
	rounds map[roundKey]*roundState
	subs   []chan Announcement

	// Event log: a bounded window of announcements, each cursor-stamped,
	// plus the folded per-service status.
	events     []Announcement
	nextCursor uint64
	status     map[wire.Service]RoundStatus

	// Fan-out core: the registered waiters and the single walker
	// goroutine's doorbell. head mirrors the newest stamped cursor so the
	// walker never takes s.mu. Lock order is s.mu then waiterMu.
	waiterMu     sync.Mutex
	waiters      map[uint64]*Waiter
	nextWaiterID uint64
	notify       chan struct{} // 1-slot; nil while no waiters are registered
	head         atomic.Uint64
	fanoutPasses atomic.Uint64 // completed walks, for tests and benchmarks

	// MaxBatch bounds the number of requests per round (0 = unlimited).
	// A deployment sets this to its provisioned capacity.
	MaxBatch int
}

// New creates an entry server.
func New() *Server {
	return &Server{
		rounds:     make(map[roundKey]*roundState),
		nextCursor: 1,
		status:     make(map[wire.Service]RoundStatus),
	}
}

// Subscribe returns a channel on which the server announces round events.
// The channel is buffered; a slow subscriber misses announcements rather
// than blocking the system, but every announcement carries its cursor, so
// the subscriber DETECTS the gap (non-consecutive cursors) and refills it
// with EventsSince. The server counts each drop in the announcement's
// service status (RoundStatus.EventDrops).
func (s *Server) Subscribe() <-chan Announcement {
	ch := make(chan Announcement, 64)
	s.mu.Lock()
	s.subs = append(s.subs, ch)
	s.mu.Unlock()
	return ch
}

// appendEventLocked stamps, logs, folds, and fans out one announcement.
// Caller holds s.mu.
func (s *Server) appendEventLocked(ann Announcement) {
	ann.Cursor = s.nextCursor
	s.nextCursor++
	s.events = append(s.events, ann)
	if len(s.events) > eventLogSize {
		s.events = s.events[len(s.events)-eventLogSize:]
	}
	st := s.status[ann.Service]
	switch ann.Kind {
	case RoundOpen:
		if ann.Round > st.CurrentOpen {
			st.CurrentOpen = ann.Round
		}
	case RoundPublished:
		if ann.Round > st.LatestPublished {
			st.LatestPublished = ann.Round
		}
	}
	for _, ch := range s.subs {
		select {
		case ch <- ann:
		default:
			// Slow subscriber: counted here, detectable client-side via
			// the cursor gap.
			st.EventDrops++
		}
	}
	s.status[ann.Service] = st

	// Ring the fan-out walker's doorbell (1-slot, so back-to-back
	// announcements coalesce into one walk).
	s.head.Store(ann.Cursor)
	s.waiterMu.Lock()
	if s.notify != nil {
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
	s.waiterMu.Unlock()
}

// Waiter is one registered consumer of the event log: a cursor plus a
// 1-slot wake channel tapped by the server's fan-out walk whenever
// events past the cursor exist. A waiter costs no goroutine; callers
// either park their own in Await or multiplex Wake into their own select
// loop and drain with Poll. Close deregisters it.
type Waiter struct {
	s      *Server
	id     uint64
	cursor atomic.Uint64
	wake   chan struct{}
}

// Register adds a waiter at the given cursor (0 = fresh consumer). The
// first registration starts the server's single fan-out goroutine.
// Callers must Poll (or Await) after registering: events already past the
// cursor do not ring the wake channel retroactively.
func (s *Server) Register(cursor uint64) *Waiter {
	w := &Waiter{s: s, wake: make(chan struct{}, 1)}
	w.cursor.Store(cursor)
	s.waiterMu.Lock()
	s.nextWaiterID++
	w.id = s.nextWaiterID
	if s.waiters == nil {
		s.waiters = make(map[uint64]*Waiter)
	}
	s.waiters[w.id] = w
	if len(s.waiters) == 1 {
		s.notify = make(chan struct{}, 1)
		go s.fanout(s.notify)
	}
	s.waiterMu.Unlock()
	return w
}

// Waiters reports the number of registered waiters.
func (s *Server) Waiters() int {
	s.waiterMu.Lock()
	defer s.waiterMu.Unlock()
	return len(s.waiters)
}

// fanout is the single-writer fan-out loop: one goroutine per server
// walks the waiter list after each announcement and taps the wake channel
// of every waiter behind the new head. It exits when the last waiter
// deregisters (notify is closed).
func (s *Server) fanout(notify <-chan struct{}) {
	for range notify {
		head := s.head.Load()
		s.waiterMu.Lock()
		for _, w := range s.waiters {
			if w.cursor.Load() >= head {
				continue
			}
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
		s.waiterMu.Unlock()
		s.fanoutPasses.Add(1)
	}
}

// Close deregisters the waiter. The last Close stops the server's
// fan-out goroutine.
func (w *Waiter) Close() {
	s := w.s
	s.waiterMu.Lock()
	if _, ok := s.waiters[w.id]; ok {
		delete(s.waiters, w.id)
		if len(s.waiters) == 0 {
			close(s.notify)
			s.notify = nil
		}
	}
	s.waiterMu.Unlock()
}

// Wake returns the waiter's wake channel for use in a caller's select
// loop. A receive means events past the waiter's cursor may exist; drain
// them with Poll. The channel is 1-slot and never closed.
func (w *Waiter) Wake() <-chan struct{} { return w.wake }

// Cursor returns the waiter's current resume cursor.
func (w *Waiter) Cursor() uint64 { return w.cursor.Load() }

// Poll returns events past the waiter's cursor without blocking (like
// EventsSince) and advances the cursor past everything returned.
func (w *Waiter) Poll(max int) (events []Announcement, next uint64, gap bool) {
	events, next, gap = w.s.EventsSince(w.cursor.Load(), max)
	if len(events) > 0 {
		w.cursor.Store(next)
	}
	return events, next, gap
}

// Await parks the calling goroutine until events past the waiter's cursor
// exist, then returns them (like EventsSince). It returns empty when the
// context ends first; next then echoes the waiter's cursor so the poll is
// resumable.
func (w *Waiter) Await(ctx context.Context, max int) (events []Announcement, next uint64, gap bool) {
	for {
		events, next, gap = w.Poll(max)
		if len(events) > 0 {
			return events, next, gap
		}
		select {
		case <-ctx.Done():
			return nil, w.cursor.Load(), false
		case <-w.wake:
		}
	}
}

// OpenRound announces a round and starts accepting requests for it.
func (s *Server) OpenRound(settings *wire.RoundSettings) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{settings.Service, settings.Round}
	if _, ok := s.rounds[k]; ok {
		return fmt.Errorf("entry: round %d (%s) already opened", settings.Round, settings.Service)
	}
	s.rounds[k] = &roundState{
		settings:  settings,
		onionSize: wire.OnionSize(settings.Service, len(settings.Mixers)),
		open:      true,
	}
	s.appendEventLocked(Announcement{
		Service:  settings.Service,
		Round:    settings.Round,
		Kind:     RoundOpen,
		Settings: settings,
	})
	return nil
}

// AnnouncePublished records that a round's mailboxes are available on the
// CDN and pushes the announcement to subscribers and waiters. The
// coordinator calls it after a successful publish (relayed or
// chain-forwarded).
func (s *Server) AnnouncePublished(service wire.Service, round uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendEventLocked(Announcement{Service: service, Round: round, Kind: RoundPublished})
}

// Status returns a service's folded round progress (newest open round,
// newest published round, subscriber drop count).
func (s *Server) Status(service wire.Service) RoundStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status[service]
}

// EventsSince returns retained announcements after the given cursor, at
// most max (0 means no bound), plus the cursor to resume from. When the
// consumer's cursor has fallen off the retained window — or is zero, a
// fresh consumer — the reply coalesces to the newest announcement per
// (service, kind) and gap reports whether events were actually lost.
func (s *Server) EventsSince(cursor uint64, max int) (events []Announcement, next uint64, gap bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventsSinceLocked(cursor, max)
}

func (s *Server) eventsSinceLocked(cursor uint64, max int) ([]Announcement, uint64, bool) {
	if len(s.events) == 0 {
		return nil, cursor, false
	}
	newest := s.events[len(s.events)-1].Cursor
	if cursor == newest {
		return nil, cursor, false
	}
	if cursor > newest {
		// A cursor from the future belongs to a previous log incarnation
		// (the frontend restarted and its cursors started over). Treating
		// it as up-to-date would park the consumer until the new log
		// happened to outgrow the stale cursor; hand over the snapshot
		// and the CURRENT head instead.
		return s.coalescedLocked(max), newest, true
	}
	if cursor+1 < s.events[0].Cursor {
		// The consumer is behind the window (or brand new, cursor 0):
		// coalesce. Round progress is monotonic, so the newest
		// announcement per (service, kind) carries everything still
		// actionable. Only a non-zero cursor actually MISSED events.
		return s.coalescedLocked(max), newest, cursor > 0
	}
	lo := 0
	for lo < len(s.events) && s.events[lo].Cursor <= cursor {
		lo++
	}
	hi := len(s.events)
	if max > 0 && hi-lo > max {
		hi = lo + max
	}
	out := make([]Announcement, hi-lo)
	copy(out, s.events[lo:hi])
	return out, out[len(out)-1].Cursor, false
}

// coalescedLocked returns the newest retained announcement per
// (service, kind), oldest-first. Caller holds s.mu.
func (s *Server) coalescedLocked(max int) []Announcement {
	type sk struct {
		service wire.Service
		kind    EventKind
	}
	seen := make(map[sk]bool)
	var out []Announcement
	for i := len(s.events) - 1; i >= 0; i-- {
		ann := s.events[i]
		key := sk{ann.Service, ann.Kind}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append([]Announcement{ann}, out...)
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// WaitEvents blocks until announcements after the cursor exist, then
// returns them (like EventsSince). It returns empty when the context ends
// first; next then echoes the caller's cursor so the poll is resumable.
// It is the one-shot form of Register/Await/Close; consumers that wait
// repeatedly should hold a Waiter instead of re-registering per call.
func (s *Server) WaitEvents(ctx context.Context, cursor uint64, max int) (events []Announcement, next uint64, gap bool) {
	w := s.Register(cursor)
	defer w.Close()
	return w.Await(ctx, max)
}

// Settings returns the announced settings for a round, or an error if the
// round is unknown.
func (s *Server) Settings(service wire.Service, round uint32) (*wire.RoundSettings, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return nil, fmt.Errorf("entry: round %d (%s) not announced", round, service)
	}
	return st.settings, nil
}

// ErrRoundClosed is returned for submissions to a closed or unknown round.
var ErrRoundClosed = errors.New("entry: round not accepting requests")

// ErrWrongSize is returned for onions that are not exactly the round's
// request size. Accepting odd-sized requests would let an adversary mark
// messages, so the check is strict.
var ErrWrongSize = errors.New("entry: request has wrong size")

// ErrRoundFull is the admission-control signal for a round whose batch
// has reached MaxBatch. It is a deferral, not a failure: the request was
// well-formed and the client should retry in the next round, which
// spreads overload across rounds instead of dropping users. Clients
// detect it with errors.Is and requeue. (The rpc transport carries
// errors as strings and maps this one back by message, so the message
// must stay stable.)
var ErrRoundFull = errors.New("entry: round full (retry next round)")

// Submit adds one client onion to the round's batch.
func (s *Server) Submit(service wire.Service, round uint32, onion []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || !st.open {
		return ErrRoundClosed
	}
	if len(onion) != st.onionSize {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongSize, len(onion), st.onionSize)
	}
	if s.MaxBatch > 0 && len(st.batch) >= s.MaxBatch {
		return ErrRoundFull
	}
	owned := make([]byte, len(onion))
	copy(owned, onion)
	st.batch = append(st.batch, owned)
	return nil
}

// CloseRound stops accepting requests and returns the batch for the mixnet.
func (s *Server) CloseRound(service wire.Service, round uint32) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return nil, fmt.Errorf("entry: round %d (%s) not announced", round, service)
	}
	if !st.open {
		return nil, fmt.Errorf("entry: round %d (%s) already closed", round, service)
	}
	st.open = false
	batch := st.batch
	st.batch = nil
	return batch, nil
}

// BatchSize reports the number of requests submitted to an open round so
// far, used by the coordinator for capacity planning.
func (s *Server) BatchSize(service wire.Service, round uint32) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return 0
	}
	return len(st.batch)
}
