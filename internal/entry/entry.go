// Package entry implements Alpenhorn's entry server (§7).
//
// The entry server is UNTRUSTED: it manages client connections, announces
// round settings, and aggregates each round's client onions into a single
// batch for the mixnet. It sees only fixed-size ciphertexts — one per
// client per round, real or cover — so a malicious entry server learns
// nothing beyond liveness, and a censoring one can only mount denial of
// service (which Alpenhorn explicitly does not defend against, §3.2).
package entry

import (
	"errors"
	"fmt"
	"sync"

	"alpenhorn/internal/wire"
)

type roundKey struct {
	service wire.Service
	round   uint32
}

type roundState struct {
	settings  *wire.RoundSettings
	onionSize int
	batch     [][]byte
	open      bool
}

// Announcement notifies subscribers that a round is accepting requests.
type Announcement struct {
	Settings *wire.RoundSettings
}

// Server is an entry server. It is safe for concurrent use.
type Server struct {
	mu     sync.Mutex
	rounds map[roundKey]*roundState
	subs   []chan Announcement

	// MaxBatch bounds the number of requests per round (0 = unlimited).
	// A deployment sets this to its provisioned capacity.
	MaxBatch int
}

// New creates an entry server.
func New() *Server {
	return &Server{rounds: make(map[roundKey]*roundState)}
}

// Subscribe returns a channel on which the server announces new rounds.
// The channel is buffered; slow subscribers miss announcements rather than
// blocking the system (clients can also poll Settings).
func (s *Server) Subscribe() <-chan Announcement {
	ch := make(chan Announcement, 64)
	s.mu.Lock()
	s.subs = append(s.subs, ch)
	s.mu.Unlock()
	return ch
}

// OpenRound announces a round and starts accepting requests for it.
func (s *Server) OpenRound(settings *wire.RoundSettings) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := roundKey{settings.Service, settings.Round}
	if _, ok := s.rounds[k]; ok {
		return fmt.Errorf("entry: round %d (%s) already opened", settings.Round, settings.Service)
	}
	s.rounds[k] = &roundState{
		settings:  settings,
		onionSize: wire.OnionSize(settings.Service, len(settings.Mixers)),
		open:      true,
	}
	for _, ch := range s.subs {
		select {
		case ch <- Announcement{Settings: settings}:
		default: // drop for slow subscribers
		}
	}
	return nil
}

// Settings returns the announced settings for a round, or an error if the
// round is unknown.
func (s *Server) Settings(service wire.Service, round uint32) (*wire.RoundSettings, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return nil, fmt.Errorf("entry: round %d (%s) not announced", round, service)
	}
	return st.settings, nil
}

// ErrRoundClosed is returned for submissions to a closed or unknown round.
var ErrRoundClosed = errors.New("entry: round not accepting requests")

// ErrWrongSize is returned for onions that are not exactly the round's
// request size. Accepting odd-sized requests would let an adversary mark
// messages, so the check is strict.
var ErrWrongSize = errors.New("entry: request has wrong size")

// ErrRoundFull is the admission-control signal for a round whose batch
// has reached MaxBatch. It is a deferral, not a failure: the request was
// well-formed and the client should retry in the next round, which
// spreads overload across rounds instead of dropping users. Clients
// detect it with errors.Is and requeue. (The rpc transport carries
// errors as strings and maps this one back by message, so the message
// must stay stable.)
var ErrRoundFull = errors.New("entry: round full (retry next round)")

// Submit adds one client onion to the round's batch.
func (s *Server) Submit(service wire.Service, round uint32, onion []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok || !st.open {
		return ErrRoundClosed
	}
	if len(onion) != st.onionSize {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongSize, len(onion), st.onionSize)
	}
	if s.MaxBatch > 0 && len(st.batch) >= s.MaxBatch {
		return ErrRoundFull
	}
	owned := make([]byte, len(onion))
	copy(owned, onion)
	st.batch = append(st.batch, owned)
	return nil
}

// CloseRound stops accepting requests and returns the batch for the mixnet.
func (s *Server) CloseRound(service wire.Service, round uint32) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return nil, fmt.Errorf("entry: round %d (%s) not announced", round, service)
	}
	if !st.open {
		return nil, fmt.Errorf("entry: round %d (%s) already closed", round, service)
	}
	st.open = false
	batch := st.batch
	st.batch = nil
	return batch, nil
}

// BatchSize reports the number of requests submitted to an open round so
// far, used by the coordinator for capacity planning.
func (s *Server) BatchSize(service wire.Service, round uint32) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.rounds[roundKey{service, round}]
	if !ok {
		return 0
	}
	return len(st.batch)
}
