package model

import (
	"crypto/rand"
	"math"
	"testing"
)

func TestPaperMailboxNumbers(t *testing.T) {
	// §8.2: with 1M users (5% active) and 3 servers, each add-friend
	// mailbox holds ~12,000 real + ~12,000 noise requests across ~4
	// mailboxes.
	p := PaperParams(1e6, 3)
	mb := p.AddFriendMailboxModel()
	if mb.NumMailboxes != 4 {
		t.Fatalf("K = %v, want 4", mb.NumMailboxes)
	}
	if math.Abs(mb.RealRequests-12500) > 1 {
		t.Fatalf("real/mailbox = %v, want 12500", mb.RealRequests)
	}
	if mb.NoiseRequests != 12000 {
		t.Fatalf("noise/mailbox = %v, want 12000", mb.NoiseRequests)
	}
	// Paper: 24,000 requests at 308 B ≈ 7.4 MB. Our requests are 453 B
	// (uncompressed BN254 points), so the same COUNT gives ~11 MB; the
	// count is the paper-comparable quantity.
	if total := mb.RealRequests + mb.NoiseRequests; math.Abs(total-24500) > 1 {
		t.Fatalf("total/mailbox = %v, want 24500", total)
	}
}

func TestPaperDialingNumbers(t *testing.T) {
	// §8.2: 1M users → one Bloom filter encoding 125,000 tokens
	// (50K real + 75K noise) ≈ 0.75 MB at 48 bits/token.
	p := PaperParams(1e6, 3)
	mb := p.DialingMailboxModel()
	if mb.NumMailboxes != 1 {
		t.Fatalf("K = %v, want 1", mb.NumMailboxes)
	}
	if total := mb.RealTokens + mb.NoiseTokens; math.Abs(total-125000) > 1 {
		t.Fatalf("tokens = %v, want 125000", total)
	}
	if math.Abs(mb.Bytes-750000) > 1 {
		t.Fatalf("filter bytes = %v, want 750000", mb.Bytes)
	}

	// 10M users → 7 mailboxes, ~150K tokens each, ~0.9 MB.
	p10 := PaperParams(1e7, 3)
	mb10 := p10.DialingMailboxModel()
	if mb10.NumMailboxes != 7 {
		t.Fatalf("K(10M) = %v, want 7", mb10.NumMailboxes)
	}
	if total := mb10.RealTokens + mb10.NoiseTokens; math.Abs(total-146428.57) > 1 {
		t.Fatalf("tokens(10M) = %v, want ≈146429", total)
	}
	if mb10.Bytes < 850000 || mb10.Bytes > 950000 {
		t.Fatalf("filter bytes(10M) = %v, want ≈0.9 MB", mb10.Bytes)
	}
}

func TestPaperBandwidthClaim(t *testing.T) {
	// Abstract: 10M users, dialing every 5 minutes → ~3 KB/s dialing
	// with paper's token sizes; our sizes match since Bloom filters
	// depend only on token COUNT.
	p := PaperParams(1e7, 3)
	bw := p.DialingBandwidth(5 * 60)
	if bw < 2500 || bw > 3500 {
		t.Fatalf("dialing bandwidth = %v B/s, want ≈3000", bw)
	}
}

func TestLatencyModelAgainstPaper(t *testing.T) {
	// With the paper-derived calibration, the model must land near the
	// paper's measured latencies: 152 s for add-friend and 118 s for
	// dialing at 10M users on 3 servers (±50%: the model is meant to
	// capture shape and order of magnitude, not exact testbed timing).
	cal := PaperCalibration()
	p := PaperParams(1e7, 3)
	af := p.AddFriendLatency(cal)
	if af < 76 || af > 228 {
		t.Fatalf("add-friend latency = %v s, paper = 152 s", af)
	}
	dial := p.DialingLatency(cal, 1000, 10)
	if dial < 59 || dial > 177 {
		t.Fatalf("dialing latency = %v s, paper = 118 s", dial)
	}
	// Monotonicity in users and servers (the shape of Figures 8-9).
	if p.AddFriendLatency(cal) <= PaperParams(1e6, 3).AddFriendLatency(cal) {
		t.Fatal("latency not increasing in users")
	}
	if PaperParams(1e7, 10).AddFriendLatency(cal) <= af {
		t.Fatal("latency not increasing in servers")
	}
}

func TestZipfUniform(t *testing.T) {
	z := NewZipf(100, 0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		r, err := z.Sample(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		counts[r]++
	}
	for i, c := range counts {
		if c < 100 || c > 320 {
			t.Fatalf("rank %d: count %d far from uniform 200", i, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// §8.4: at s=2 with 1M users, the top 10 users receive 94.2% of all
	// requests.
	z := NewZipf(1000000, 2)
	share := z.TopShare(10)
	if math.Abs(share-0.942) > 0.005 {
		t.Fatalf("top-10 share at s=2: %.4f, paper says 0.942", share)
	}
	// Higher skew concentrates more mass.
	if NewZipf(1000, 1.5).TopShare(10) <= NewZipf(1000, 0.5).TopShare(10) {
		t.Fatal("TopShare not increasing in s")
	}
}

func TestZipfMailboxLoadSkew(t *testing.T) {
	const k = 8
	uniform, err := NewZipf(10000, 0).MailboxLoad(rand.Reader, 20000, k)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := NewZipf(10000, 2).MailboxLoad(rand.Reader, 20000, k)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(c []int) int {
		min, max := c[0], c[0]
		for _, v := range c {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	if spread(skewed) <= spread(uniform) {
		t.Fatalf("skewed spread %d not larger than uniform spread %d",
			spread(skewed), spread(uniform))
	}
}

func TestBandwidthDecreasingInRoundDuration(t *testing.T) {
	p := PaperParams(1e6, 3)
	prev := math.Inf(1)
	for _, d := range []float64{600, 3600, 7200, 86400} {
		bw := p.AddFriendBandwidth(d)
		if bw >= prev {
			t.Fatalf("bandwidth not decreasing at duration %v", d)
		}
		prev = bw
	}
}
