package model

import (
	"encoding/binary"
	"io"
	"math"
	"sort"
)

// Zipf samples recipient ranks 1..N with probability proportional to
// rank^(-s), for any s ≥ 0 (math/rand's Zipf requires s > 1, and the
// paper's Figure 10 sweeps s from 0 to 2). Sampling is by inverse CDF over
// a precomputed cumulative table.
type Zipf struct {
	cum []float64 // cumulative weights, cum[N-1] == total
}

// NewZipf builds a sampler over n ranks with skew s. s == 0 is uniform.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("model: Zipf needs n > 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Sample draws a rank in [0, n) (0 = most popular).
func (z *Zipf) Sample(rnd io.Reader) (int, error) {
	var buf [8]byte
	if _, err := io.ReadFull(rnd, buf[:]); err != nil {
		return 0, err
	}
	u := float64(binary.BigEndian.Uint64(buf[:])>>11) / (1 << 53)
	target := u * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, target), nil
}

// TopShare returns the fraction of probability mass held by the top k
// ranks — e.g. the paper notes that at s=2 the top 10 users receive 94.2%
// of all requests.
func (z *Zipf) TopShare(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(z.cum) {
		k = len(z.cum)
	}
	return z.cum[k-1] / z.cum[len(z.cum)-1]
}

// MailboxLoad distributes nRequests Zipf-sampled recipients over k
// mailboxes (recipient rank r lands in mailbox hash(r) mod k, approximated
// here by r mod k after a multiplicative scramble, matching the uniform
// spreading of H(email) mod K) and returns per-mailbox counts.
func (z *Zipf) MailboxLoad(rnd io.Reader, nRequests, k int) ([]int, error) {
	counts := make([]int, k)
	for i := 0; i < nRequests; i++ {
		rank, err := z.Sample(rnd)
		if err != nil {
			return nil, err
		}
		// Multiplicative hash to emulate H(email) mod K: adjacent
		// ranks must not land in adjacent mailboxes.
		h := uint64(rank+1) * 0x9E3779B97F4A7C15
		counts[h%uint64(k)]++
	}
	return counts, nil
}
