// Package model is the analytic cost model used to regenerate the paper's
// evaluation figures at scales (1M-10M users) that exceed a single test
// machine.
//
// The model implements the sizing rules stated in §6 and §8 of the paper:
//
//   - Each mixnet server adds an average of µ noise requests to every
//     mailbox (µ=4000 for add-friend, µ=25000 for dialing).
//   - The number of mailboxes K is chosen so that each mailbox holds a
//     roughly equal amount of noise and real requests.
//   - Add-friend mailboxes hold fixed-size encrypted friend requests;
//     dialing mailboxes are Bloom filters at 48 bits per token.
//
// Message sizes come from the REAL implementation (wire package constants),
// not from the paper, so the model reflects this codebase; EXPERIMENTS.md
// tabulates ours vs the paper's. The latency model is calibrated against
// measured per-request costs from real in-process rounds (see
// cmd/alpenhorn-bench and bench_test.go).
package model

import (
	"math"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/wire"
)

// Params describes a deployment for the analytic model.
type Params struct {
	// Users is the number of online users.
	Users float64
	// ActiveFraction is the fraction of users making a real request per
	// round (the paper evaluates 5%).
	ActiveFraction float64
	// Servers is the number of mixnet servers (= PKGs in the paper's
	// setup).
	Servers float64
	// AddFriendMu and DialingMu are per-server per-mailbox mean noise.
	AddFriendMu float64
	DialingMu   float64
}

// PaperParams returns the paper's evaluation configuration (§8.1) for a
// given user count and server count.
func PaperParams(users, servers float64) Params {
	return Params{
		Users:          users,
		ActiveFraction: 0.05,
		Servers:        servers,
		AddFriendMu:    4000,
		DialingMu:      25000,
	}
}

// RealRequests returns the number of real (non-cover) requests per round.
func (p Params) RealRequests() float64 {
	return p.Users * p.ActiveFraction
}

// noisePerMailbox returns the total expected noise in one mailbox for a
// protocol (µ summed over all servers).
func (p Params) noisePerMailbox(mu float64) float64 {
	return mu * p.Servers
}

// NumMailboxes returns K for one protocol following the paper's balance
// rule: real requests per mailbox ≈ noise per mailbox (§6), with K ≥ 1.
func (p Params) NumMailboxes(mu float64) float64 {
	k := math.Round(p.RealRequests() / p.noisePerMailbox(mu))
	if k < 1 {
		k = 1
	}
	return k
}

// AddFriendMailbox describes one add-friend mailbox.
type AddFriendMailbox struct {
	NumMailboxes  float64
	RealRequests  float64 // per mailbox
	NoiseRequests float64 // per mailbox
	Bytes         float64 // mailbox size a client downloads
}

// AddFriendMailboxModel computes the expected add-friend mailbox for the
// deployment.
func (p Params) AddFriendMailboxModel() AddFriendMailbox {
	k := p.NumMailboxes(p.AddFriendMu)
	real := p.RealRequests() / k
	noisy := p.noisePerMailbox(p.AddFriendMu)
	return AddFriendMailbox{
		NumMailboxes:  k,
		RealRequests:  real,
		NoiseRequests: noisy,
		Bytes:         (real + noisy) * float64(wire.EncryptedFriendRequestSize),
	}
}

// DialingMailbox describes one dialing mailbox (a Bloom filter).
type DialingMailbox struct {
	NumMailboxes float64
	RealTokens   float64 // per mailbox
	NoiseTokens  float64 // per mailbox
	Bytes        float64 // Bloom filter size a client downloads
}

// DialingMailboxModel computes the expected dialing mailbox.
func (p Params) DialingMailboxModel() DialingMailbox {
	k := p.NumMailboxes(p.DialingMu)
	real := p.RealRequests() / k
	noisy := p.noisePerMailbox(p.DialingMu)
	tokens := real + noisy
	return DialingMailbox{
		NumMailboxes: k,
		RealTokens:   real,
		NoiseTokens:  noisy,
		Bytes:        tokens * float64(bloom.DefaultBitsPerElement) / 8,
	}
}

// ClientUploadBytes returns the client's per-round upload: one fixed-size
// onion.
func (p Params) ClientUploadBytes(service wire.Service) float64 {
	return float64(wire.OnionSize(service, int(p.Servers)))
}

// AddFriendBandwidth returns the client bandwidth in bytes/sec for the
// add-friend protocol at a given round duration (Figure 6: download
// dominates; upload is one onion per round).
func (p Params) AddFriendBandwidth(roundDuration float64) float64 {
	mb := p.AddFriendMailboxModel()
	return (mb.Bytes + p.ClientUploadBytes(wire.AddFriend)) / roundDuration
}

// DialingBandwidth returns the client bandwidth in bytes/sec for the
// dialing protocol at a given round duration (Figure 7).
func (p Params) DialingBandwidth(roundDuration float64) float64 {
	mb := p.DialingMailboxModel()
	return (mb.Bytes + p.ClientUploadBytes(wire.Dialing)) / roundDuration
}

// CostCalibration holds measured per-item costs from the real
// implementation, used to extrapolate round latencies (Figures 8-10).
// Fill it from bench measurements (cmd/alpenhorn-bench measures
// MixSecondsPerMessage and IBEDecryptSeconds live; see EXPERIMENTS.md
// for the dev-machine series).
type CostCalibration struct {
	// MixSecondsPerMessage is the per-message cost of one mix server's
	// Mix pass (X25519 open + shuffle share).
	MixSecondsPerMessage float64
	// NoiseSecondsPerMessage is the per-noise-message generation cost.
	NoiseSecondsPerMessage float64
	// IBEDecryptSeconds is one trial decryption during a mailbox scan,
	// in the scan configuration clients run: the identity key's
	// Miller-loop ladder is precomputed once per mailbox and ciphertexts
	// go through ibe.DecryptBatch in chunks, which shares one field
	// inversion across the whole chunk (Montgomery's trick) and uses the
	// decomposed final exponentiation, so this is the marginal
	// per-ciphertext cost of the batched pipeline. On the Montgomery-limb
	// backend it is ~2-4 ms on the dev machine (~5 ms unbatched; ~135 ms
	// on big.Int, which made this term dominate the whole Figure 8
	// "ours" curve).
	IBEDecryptSeconds float64
	// TokenScanSeconds is one keywheel token derivation + Bloom probe.
	TokenScanSeconds float64
	// InterServerRTT is the per-hop server-to-server latency.
	InterServerRTT float64
	// DownloadBytesPerSecond is the client's download throughput.
	DownloadBytesPerSecond float64
	// ScanCores is the client's core count for mailbox scans (the paper
	// uses 4).
	ScanCores float64
}

// PaperCalibration returns per-item costs back-derived from the paper's
// own reported numbers (800 IBE decryptions/sec/core, 1M hashes/sec, 10
// Gbps links, 152 s rounds at 10M users on 3 servers). Using these shows
// that the MODEL reproduces the paper's curves; using measured costs from
// this codebase shows what our substrate achieves.
func PaperCalibration() CostCalibration {
	return CostCalibration{
		MixSecondsPerMessage:   3.0e-6,
		NoiseSecondsPerMessage: 6.0e-6,
		IBEDecryptSeconds:      1.0 / 800,
		TokenScanSeconds:       1.0e-6,
		InterServerRTT:         0.080,
		DownloadBytesPerSecond: 50e6,
		ScanCores:              4,
	}
}

// AddFriendLatency models the end-to-end latency of an AddFriend request
// (Figure 8): batch mixing through every server, noise generation, mailbox
// download, and the client's trial-decryption scan.
func (p Params) AddFriendLatency(c CostCalibration) float64 {
	mb := p.AddFriendMailboxModel()
	batch := p.Users // every online user submits (cover or real)
	totalNoise := mb.NoiseRequests * mb.NumMailboxes

	mixTime := p.Servers * (batch*c.MixSecondsPerMessage + totalNoise/p.Servers*c.NoiseSecondsPerMessage)
	transfer := p.Servers * c.InterServerRTT
	download := mb.Bytes / c.DownloadBytesPerSecond
	scan := (mb.RealRequests + mb.NoiseRequests) * c.IBEDecryptSeconds / c.ScanCores
	return mixTime + transfer + download + scan
}

// DialingLatency models the end-to-end latency of a Call request
// (Figure 9).
func (p Params) DialingLatency(c CostCalibration, friends, intents float64) float64 {
	mb := p.DialingMailboxModel()
	batch := p.Users
	totalNoise := mb.NoiseTokens * mb.NumMailboxes

	mixTime := p.Servers * (batch*c.MixSecondsPerMessage + totalNoise/p.Servers*c.NoiseSecondsPerMessage)
	transfer := p.Servers * c.InterServerRTT
	download := mb.Bytes / c.DownloadBytesPerSecond
	scan := friends * intents * c.TokenScanSeconds
	return mixTime + transfer + download + scan
}
