package sim

import (
	"crypto/rand"
	"fmt"
	"io"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/wire"
)

// This file generates synthetic client workloads for benchmarks: batches of
// correctly-formed request onions WITHOUT running full client state
// machines, so that server-side costs (Figures 8-10) can be measured at
// scales where constructing millions of real clients would dominate.
//
// Synthetic real add-friend requests use ibe.RandomCiphertext, which is
// byte-for-byte indistinguishable from (and computationally identical to
// process for) genuine encrypted friend requests — exactly the property
// (§4.3 ciphertext anonymity) that the mixnet's own noise relies on.

// Workload describes a synthetic round's client traffic.
type Workload struct {
	// Real is the number of clients making a real request this round.
	Real int
	// Cover is the number of clients submitting cover traffic.
	Cover int
	// MailboxOf returns the destination mailbox for real request i;
	// nil means uniform over [0, NumMailboxes).
	MailboxOf func(i int) uint32
}

// GenerateBatch builds the round's onions for the given settings.
func GenerateBatch(rnd io.Reader, settings *wire.RoundSettings, w Workload) ([][]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	hops := make([]*onionbox.PublicKey, len(settings.Mixers))
	for i, m := range settings.Mixers {
		pk, err := onionbox.UnmarshalPublicKey(m.OnionKey)
		if err != nil {
			return nil, fmt.Errorf("sim: mixer %d key: %w", i, err)
		}
		hops[i] = pk
	}

	batch := make([][]byte, 0, w.Real+w.Cover)
	for i := 0; i < w.Real; i++ {
		var mailbox uint32
		if w.MailboxOf != nil {
			mailbox = w.MailboxOf(i) % settings.NumMailboxes
		} else {
			var b [4]byte
			if _, err := io.ReadFull(rnd, b[:]); err != nil {
				return nil, err
			}
			mailbox = (uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])) % settings.NumMailboxes
		}
		body, err := realBody(rnd, settings.Service)
		if err != nil {
			return nil, err
		}
		payload := (&wire.MixPayload{Mailbox: mailbox, Body: body}).Marshal()
		onion, err := onionbox.WrapOnion(rnd, hops, payload)
		if err != nil {
			return nil, err
		}
		batch = append(batch, onion)
	}
	for i := 0; i < w.Cover; i++ {
		body, err := coverBody(rnd, settings.Service)
		if err != nil {
			return nil, err
		}
		payload := (&wire.MixPayload{Mailbox: wire.CoverMailbox, Body: body}).Marshal()
		onion, err := onionbox.WrapOnion(rnd, hops, payload)
		if err != nil {
			return nil, err
		}
		batch = append(batch, onion)
	}
	return batch, nil
}

func realBody(rnd io.Reader, service wire.Service) ([]byte, error) {
	switch service {
	case wire.AddFriend:
		return ibe.RandomCiphertext(rnd, wire.FriendRequestSize)
	case wire.Dialing:
		tok := make([]byte, keywheel.TokenSize)
		_, err := io.ReadFull(rnd, tok)
		return tok, err
	default:
		return nil, fmt.Errorf("sim: unknown service %v", service)
	}
}

func coverBody(rnd io.Reader, service wire.Service) ([]byte, error) {
	switch service {
	case wire.AddFriend:
		return make([]byte, wire.EncryptedFriendRequestSize), nil
	case wire.Dialing:
		tok := make([]byte, keywheel.TokenSize)
		_, err := io.ReadFull(rnd, tok)
		return tok, err
	default:
		return nil, fmt.Errorf("sim: unknown service %v", service)
	}
}
