// Package sim assembles a complete in-process Alpenhorn deployment: a
// configurable number of PKG servers and mixnet servers, an entry server, a
// CDN store, a simulated email provider, and a round coordinator.
//
// It exists so that integration tests, the examples, and the benchmark
// harness all exercise the REAL protocol stack — real IBE, real onions,
// real mixing and noise — with rounds driven deterministically instead of
// on timers. cmd/ daemons compose the same server types over TCP.
package sim

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"strings"
	"time"

	"alpenhorn/internal/bls"
	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/core"
	"alpenhorn/internal/email"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// Config describes the simulated deployment.
type Config struct {
	// NumPKGs and NumMixers default to the paper's 3-server setup.
	NumPKGs   int
	NumMixers int

	// NumFrontends is the number of entry frontends (default 1). With
	// more than one, Network.Entry is frontend 0 and the rest live in
	// Network.Frontends; the coordinator replays every announcement to
	// all of them in the same order (one shared cursor namespace), and
	// each frontend admits — and, at close, contributes — its own
	// sub-batch.
	NumFrontends int

	// NumCDNs is the number of CDN replicas (default 1). Network.CDN is
	// replica 0, the coordinator's publish target; the rest live in
	// Network.CDNs[1:] and receive a copy of every published round
	// (Coordinator.CDNMirrors), so a client can fetch from any replica.
	NumCDNs int

	// Noise distributions; defaults are deliberately small so tests run
	// fast (the paper-scale µ=4000/25000 values generate millions of
	// messages). Pass noise.AddFriendNoise / noise.DialingNoise for
	// paper parameters.
	AddFriendNoise *noise.Laplace
	DialingNoise   *noise.Laplace

	// TargetRequestsPerMailbox controls mailbox sharding (default 24000,
	// as in the paper).
	TargetRequestsPerMailbox int

	// Now is the clock given to the PKGs (tests inject manual clocks to
	// exercise the 30-day policies).
	Now func() time.Time
}

// Network is a running in-process deployment.
type Network struct {
	Provider *email.InMemoryProvider
	PKGs     []*pkgserver.Server
	Mixers   []*mixnet.Server
	Entry    *entry.Server
	// Frontends holds the extra entry frontends beyond Entry when
	// Config.NumFrontends > 1. Clients may track rounds and submit
	// through any of them.
	Frontends []*entry.Server
	CDN       *cdn.Store
	// CDNs holds every CDN replica; CDNs[0] == CDN. Present only when
	// Config.NumCDNs > 1.
	CDNs  []*cdn.Store
	Coord *coordinator.Coordinator

	MixerKeys  []ed25519.PublicKey
	PKGKeys    []ed25519.PublicKey
	PKGBLSKeys []*bls.PublicKey
}

// smallNoise is the default test noise: deterministic, 2 messages per
// mailbox per server.
var smallNoise = noise.Laplace{Mu: 2, B: 0}

// NewNetwork builds a deployment.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.NumPKGs == 0 {
		cfg.NumPKGs = 3
	}
	if cfg.NumMixers == 0 {
		cfg.NumMixers = 3
	}
	if cfg.AddFriendNoise == nil {
		cfg.AddFriendNoise = &smallNoise
	}
	if cfg.DialingNoise == nil {
		cfg.DialingNoise = &smallNoise
	}
	if cfg.TargetRequestsPerMailbox == 0 {
		cfg.TargetRequestsPerMailbox = 24000
	}

	n := &Network{
		Provider: email.NewInMemoryProvider(),
		Entry:    entry.New(),
		CDN:      cdn.NewStore(0),
	}
	for i := 0; i < cfg.NumPKGs; i++ {
		pkg, err := pkgserver.New(pkgserver.Config{
			Name:     fmt.Sprintf("pkg%d", i),
			Provider: n.Provider,
			Now:      cfg.Now,
		})
		if err != nil {
			return nil, err
		}
		n.PKGs = append(n.PKGs, pkg)
		n.PKGKeys = append(n.PKGKeys, pkg.SigningKey())
		n.PKGBLSKeys = append(n.PKGBLSKeys, pkg.BLSKey())
	}
	for i := 0; i < cfg.NumMixers; i++ {
		m, err := mixnet.New(mixnet.Config{
			Name:           fmt.Sprintf("mixer%d", i),
			Position:       i,
			ChainLength:    cfg.NumMixers,
			AddFriendNoise: cfg.AddFriendNoise,
			DialingNoise:   cfg.DialingNoise,
		})
		if err != nil {
			return nil, err
		}
		n.Mixers = append(n.Mixers, m)
		n.MixerKeys = append(n.MixerKeys, m.SigningKey())
	}
	n.Coord = coordinator.New(n.Entry, n.Mixers, n.PKGs, n.CDN)
	n.Coord.TargetRequestsPerMailbox = cfg.TargetRequestsPerMailbox
	for i := 1; i < cfg.NumFrontends; i++ {
		f := entry.New()
		n.Frontends = append(n.Frontends, f)
		n.Coord.Frontends = append(n.Coord.Frontends, f)
	}
	if cfg.NumCDNs > 1 {
		n.CDNs = []*cdn.Store{n.CDN}
		for i := 1; i < cfg.NumCDNs; i++ {
			replica := cdn.NewStore(0)
			n.CDNs = append(n.CDNs, replica)
			n.Coord.CDNMirrors = append(n.Coord.CDNMirrors, replica)
		}
	}
	return n, nil
}

// ClientConfig returns a core.Config wired to this network's servers
// through the in-process adapters, so a simulated client exercises the
// same context-aware interfaces (including the push-based round-event
// surface) as one talking to daemons over TCP.
func (n *Network) ClientConfig(addr string, handler core.Handler) core.Config {
	pkgs := make([]core.PKG, len(n.PKGs))
	for i, p := range n.PKGs {
		pkgs[i] = PKGAdapter{P: p}
	}
	return core.Config{
		Email:      addr,
		PKGs:       pkgs,
		Entry:      EntryAdapter{E: n.Entry},
		Mailboxes:  CDNAdapter{S: n.CDN},
		MixerKeys:  n.MixerKeys,
		PKGKeys:    n.PKGKeys,
		PKGBLSKeys: n.PKGBLSKeys,
		NumIntents: 10, // the paper's evaluation default (§8.1)
		Handler:    handler,
	}
}

// NewClient creates, registers, and confirms a client in one step. The
// email confirmation loop reads the simulated inbox and echoes each PKG's
// token, standing in for the user clicking confirmation links.
func (n *Network) NewClient(addr string, handler core.Handler) (*core.Client, error) {
	client, err := core.NewClient(n.ClientConfig(addr, handler))
	if err != nil {
		return nil, err
	}
	if err := client.Register(context.Background()); err != nil {
		return nil, err
	}
	if err := n.ConfirmAll(client); err != nil {
		return nil, err
	}
	return client, nil
}

// ConfirmAll completes registration at every PKG by reading the
// confirmation tokens from the simulated inbox.
func (n *Network) ConfirmAll(client *core.Client) error {
	inbox := n.Provider.Inbox(client.Email())
	confirmed := 0
	for i, pkg := range n.PKGs {
		// Scan the inbox newest-first for this PKG's latest token.
		prefix := fmt.Sprintf("pkg-%s@", pkg.Name)
		for j := len(inbox) - 1; j >= 0; j-- {
			if strings.HasPrefix(inbox[j].From, prefix) {
				if err := client.ConfirmRegistration(context.Background(), i, inbox[j].Body); err != nil {
					return fmt.Errorf("sim: confirming at PKG %d: %w", i, err)
				}
				confirmed++
				break
			}
		}
	}
	if confirmed != len(n.PKGs) {
		return fmt.Errorf("sim: confirmed at %d of %d PKGs", confirmed, len(n.PKGs))
	}
	return nil
}

// RunAddFriendRound drives one complete add-friend round for the given
// clients: announce, submit (every client, cover or real), mix, publish,
// scan (every client), and finally destroy the round's master keys.
func (n *Network) RunAddFriendRound(round uint32, clients []*core.Client) error {
	ctx := context.Background()
	if _, err := n.Coord.OpenAddFriendRound(round); err != nil {
		return err
	}
	for _, c := range clients {
		if err := c.SubmitAddFriendRound(ctx, round); err != nil {
			return fmt.Errorf("sim: %s submit: %w", c.Email(), err)
		}
	}
	if _, err := n.Coord.CloseRound(wire.AddFriend, round); err != nil {
		return err
	}
	for _, c := range clients {
		if err := c.ScanAddFriendRound(ctx, round); err != nil {
			return fmt.Errorf("sim: %s scan: %w", c.Email(), err)
		}
	}
	n.Coord.FinishAddFriendRound(round)
	return nil
}

// RunDialRound drives one complete dialing round for the given clients.
func (n *Network) RunDialRound(round uint32, clients []*core.Client) error {
	ctx := context.Background()
	if _, err := n.Coord.OpenDialingRound(round); err != nil {
		return err
	}
	for _, c := range clients {
		if err := c.SubmitDialRound(ctx, round); err != nil {
			return fmt.Errorf("sim: %s submit: %w", c.Email(), err)
		}
	}
	if _, err := n.Coord.CloseRound(wire.Dialing, round); err != nil {
		return err
	}
	for _, c := range clients {
		if err := c.ScanDialRound(ctx, round); err != nil {
			return fmt.Errorf("sim: %s scan: %w", c.Email(), err)
		}
	}
	return nil
}

// DirectUser is a bare registered identity against a single PKG, used by
// server-side benchmarks that need signed extraction requests without a
// full client.
type DirectUser struct {
	Email string
	Pub   ed25519.PublicKey
	priv  ed25519.PrivateKey
}

// RegisterDirect registers a fresh user at one PKG, confirming through the
// provider's inbox.
func RegisterDirect(pkg *pkgserver.Server, provider *email.InMemoryProvider, addr string) (*DirectUser, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	if err := pkg.Register(addr, pub); err != nil {
		return nil, err
	}
	inbox := provider.Inbox(addr)
	if len(inbox) == 0 {
		return nil, fmt.Errorf("sim: no confirmation email for %s", addr)
	}
	if err := pkg.ConfirmRegistration(addr, inbox[len(inbox)-1].Body); err != nil {
		return nil, err
	}
	return &DirectUser{Email: addr, Pub: pub, priv: priv}, nil
}

// SignExtract signs a key-extraction request for a round.
func (u *DirectUser) SignExtract(addr string, round uint32) []byte {
	return ed25519.Sign(u.priv, pkgserver.ExtractMessage(addr, round))
}

// Befriend runs the full two-round add-friend handshake between two
// clients (a initiates, b's handler must accept) and returns an error if
// the friendship did not complete. It is the programmatic equivalent of
// the paper's §3 walkthrough.
func (n *Network) Befriend(a, b *core.Client, startRound uint32) error {
	if err := a.AddFriend(b.Email(), nil); err != nil {
		return err
	}
	clients := []*core.Client{a, b}
	// Round 1: a's request reaches b; b's handler accepts and queues a
	// response. Round 2: b's response reaches a.
	if err := n.RunAddFriendRound(startRound, clients); err != nil {
		return err
	}
	if err := n.RunAddFriendRound(startRound+1, clients); err != nil {
		return err
	}
	if !a.IsFriend(b.Email()) || !b.IsFriend(a.Email()) {
		return fmt.Errorf("sim: friendship %s <-> %s did not complete", a.Email(), b.Email())
	}
	return nil
}
