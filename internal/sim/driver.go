package sim

import (
	"context"
	"time"

	"alpenhorn/internal/wire"
)

// RoundDriver configures StartRounds, the timer-free round scheduler that
// lets examples and tests drive clients through Client.Run exactly as a
// deployment's entry daemon would — open, wait for submissions, close,
// publish — without wall-clock round intervals making them slow or flaky.
type RoundDriver struct {
	// Services to drive; default both (add-friend and dialing).
	Services []wire.Service

	// WaitSubmissions closes a round as soon as this many requests have
	// arrived (every connected Run client submits each round, cover
	// traffic included, so "number of clients" makes rounds exactly as
	// long as they need to be). 0 waits the full SubmitWindow.
	WaitSubmissions int

	// SubmitWindow bounds how long an open round waits for submissions
	// (default 10s — a deadline, not a pace: with WaitSubmissions set,
	// rounds close as soon as everyone has submitted).
	SubmitWindow time.Duration

	// Interval pauses between a round's close and the next round's open
	// (default 0: back-to-back rounds).
	Interval time.Duration

	// OnError, when set, receives round open/close errors. Close errors
	// do not stop the driver (a failed round is skipped, like the entry
	// daemon); open errors do.
	OnError func(error)
}

// StartRounds drives rounds for each configured service on background
// goroutines until ctx is cancelled. Published-round announcements flow
// through the entry server's event log, so clients connected via
// Client.Run follow along with no polling.
func (n *Network) StartRounds(ctx context.Context, d RoundDriver) {
	if len(d.Services) == 0 {
		d.Services = []wire.Service{wire.AddFriend, wire.Dialing}
	}
	if d.SubmitWindow <= 0 {
		d.SubmitWindow = 10 * time.Second
	}
	for _, service := range d.Services {
		go n.driveService(ctx, service, d)
	}
}

func (n *Network) driveService(ctx context.Context, service wire.Service, d RoundDriver) {
	report := func(err error) {
		if d.OnError != nil && err != nil {
			d.OnError(err)
		}
	}
	for round := uint32(1); ctx.Err() == nil; round++ {
		var err error
		if service == wire.AddFriend {
			_, err = n.Coord.OpenAddFriendRound(round)
		} else {
			_, err = n.Coord.OpenDialingRound(round)
		}
		if err != nil {
			report(err)
			return
		}

		deadline := time.Now().Add(d.SubmitWindow)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			if d.WaitSubmissions > 0 && n.Entry.BatchSize(service, round) >= d.WaitSubmissions {
				break
			}
			select {
			case <-ctx.Done():
			case <-time.After(2 * time.Millisecond):
			}
		}

		if _, err := n.Coord.CloseRound(service, round); err != nil {
			report(err)
		}
		if service == wire.AddFriend {
			n.Coord.FinishAddFriendRound(round)
		}
		if d.Interval > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d.Interval):
			}
		}
	}
}
