package sim

import (
	"testing"

	"alpenhorn/internal/wire"
)

func TestNetworkDefaults(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.PKGs) != 3 || len(n.Mixers) != 3 {
		t.Fatalf("defaults: %d PKGs, %d mixers; want 3/3", len(n.PKGs), len(n.Mixers))
	}
	if len(n.PKGKeys) != 3 || len(n.PKGBLSKeys) != 3 || len(n.MixerKeys) != 3 {
		t.Fatal("pinned key lists incomplete")
	}
}

func TestNewClientRegistersEverywhere(t *testing.T) {
	n, err := NewNetwork(Config{NumPKGs: 2, NumMixers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := &Handler{AcceptAll: true}
	c, err := n.NewClient("user@example.org", h)
	if err != nil {
		t.Fatal(err)
	}
	for i, pkg := range n.PKGs {
		key, ok := pkg.Registered("user@example.org")
		if !ok {
			t.Fatalf("not registered at PKG %d", i)
		}
		if !key.Equal(c.SigningKey()) {
			t.Fatalf("PKG %d has wrong key", i)
		}
	}
}

func TestGenerateBatchShapes(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	settings, err := n.Coord.OpenDialingRound(1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := GenerateBatch(nil, settings, Workload{Real: 5, Cover: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 12 {
		t.Fatalf("batch size %d", len(batch))
	}
	want := wire.OnionSize(wire.Dialing, len(settings.Mixers))
	for i, onion := range batch {
		if len(onion) != want {
			t.Fatalf("onion %d size %d, want %d", i, len(onion), want)
		}
	}
	// The generated batch is accepted by the entry server and survives
	// the mix chain.
	for _, onion := range batch {
		if err := n.Entry.Submit(wire.Dialing, 1, onion); err != nil {
			t.Fatal(err)
		}
	}
	boxes, err := n.Coord.CloseRound(wire.Dialing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) == 0 {
		t.Fatal("no mailboxes")
	}
}

func TestGenerateBatchAddFriend(t *testing.T) {
	n, err := NewNetwork(Config{})
	if err != nil {
		t.Fatal(err)
	}
	settings, err := n.Coord.OpenAddFriendRound(1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := GenerateBatch(nil, settings, Workload{
		Real:      3,
		Cover:     3,
		MailboxOf: func(i int) uint32 { return uint32(i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, onion := range batch {
		if err := n.Entry.Submit(wire.AddFriend, 1, onion); err != nil {
			t.Fatal(err)
		}
	}
	boxes, err := n.Coord.CloseRound(wire.AddFriend, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range boxes {
		if len(b)%wire.EncryptedFriendRequestSize != 0 {
			t.Fatal("mailbox not request-aligned")
		}
		total += len(b) / wire.EncryptedFriendRequestSize
	}
	// 3 real + noise (cover dropped); noise is 2/mailbox/server.
	if total < 3 {
		t.Fatalf("real requests lost: %d", total)
	}
}

func TestRegisterDirect(t *testing.T) {
	n, err := NewNetwork(Config{NumPKGs: 1, NumMixers: 1})
	if err != nil {
		t.Fatal(err)
	}
	u, err := RegisterDirect(n.PKGs[0], n.Provider, "direct@example.org")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.PKGs[0].NewRound(1); err != nil {
		t.Fatal(err)
	}
	sig := u.SignExtract("direct@example.org", 1)
	if _, err := n.PKGs[0].Extract("direct@example.org", 1, sig); err != nil {
		t.Fatal(err)
	}
}
