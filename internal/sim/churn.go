package sim

import (
	mathrand "math/rand"
)

// This file is the churn-injection harness: a deterministic, seeded
// schedule of daemon failures for multi-round availability experiments.
// The plan is pure data — WHICH daemon dies, pauses, or comes back
// before WHICH round — so the TCP round tests (internal/rpc) and the
// bench harness (alpenhorn-bench -exp churn) replay the exact same
// failure sequence against real daemon fleets, and a fixed seed makes
// any run reproducible.

// ChurnAction is one kind of injected failure.
type ChurnAction int

const (
	// ChurnKill takes the daemon's RPC listener down: peers and the
	// coordinator get transport errors until a ChurnRestart.
	ChurnKill ChurnAction = iota
	// ChurnRestart brings a killed daemon back on its old address.
	ChurnRestart
	// ChurnPause takes the daemon down and brings it back within the
	// same inter-round gap — a GC stall or network blip rather than a
	// crash; the scheduler should see a failed probe at worst.
	ChurnPause
)

func (a ChurnAction) String() string {
	switch a {
	case ChurnKill:
		return "kill"
	case ChurnRestart:
		return "restart"
	case ChurnPause:
		return "pause"
	default:
		return "unknown"
	}
}

// ChurnEvent is one scheduled failure: apply Action to the daemon at
// (Position, Shard) before planning round Round. Victims are always
// non-announcer shards (Shard >= 1): the announcer's signing key is
// pinned by clients, so no scheduler could route around its death, and
// the experiment measures self-healing, not key ceremony.
type ChurnEvent struct {
	Round    int
	Position int
	Shard    int
	Action   ChurnAction
}

// ChurnPlan is a deterministic failure schedule over a shard fleet.
type ChurnPlan struct {
	Events []ChurnEvent
	// Kills and Pauses count the scheduled disruptions (restarts excluded).
	Kills  int
	Pauses int
}

// NewChurnPlan builds a seeded failure schedule for `rounds` consecutive
// rounds over a fleet with counts[i] daemons at position i. Every
// killEvery-th round (starting at round 1) one randomly chosen
// non-announcer shard is disrupted before the round opens — usually
// killed and restarted before the round after next, occasionally only
// paused — so consecutive rounds see daemons die, stay dead for a full
// round, and return. Positions with a single daemon are never victims.
func NewChurnPlan(seed int64, rounds, killEvery int, counts []int) *ChurnPlan {
	if killEvery < 1 {
		killEvery = 1
	}
	rng := mathrand.New(mathrand.NewSource(seed))
	var candidates [][2]int
	for pos, n := range counts {
		for s := 1; s < n; s++ {
			candidates = append(candidates, [2]int{pos, s})
		}
	}
	plan := &ChurnPlan{}
	if len(candidates) == 0 {
		return plan
	}
	for r := 1; r <= rounds; r++ {
		if (r-1)%killEvery != 0 {
			continue
		}
		victim := candidates[rng.Intn(len(candidates))]
		if rng.Intn(4) == 0 {
			plan.Events = append(plan.Events, ChurnEvent{
				Round: r, Position: victim[0], Shard: victim[1], Action: ChurnPause,
			})
			plan.Pauses++
			continue
		}
		plan.Events = append(plan.Events, ChurnEvent{
			Round: r, Position: victim[0], Shard: victim[1], Action: ChurnKill,
		})
		plan.Kills++
		// The daemon stays dead through round r (the scheduler must
		// bench it and draft a spare) and returns before round r+1, so
		// re-admission is exercised on every kill.
		if r+1 <= rounds {
			plan.Events = append(plan.Events, ChurnEvent{
				Round: r + 1, Position: victim[0], Shard: victim[1], Action: ChurnRestart,
			})
		}
	}
	return plan
}

// EventsBefore returns the events to apply before planning `round`, in
// schedule order.
func (p *ChurnPlan) EventsBefore(round int) []ChurnEvent {
	var out []ChurnEvent
	for _, ev := range p.Events {
		if ev.Round == round {
			out = append(out, ev)
		}
	}
	return out
}
