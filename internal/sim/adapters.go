package sim

// The core client's server interfaces are context-aware (the transport
// must be interruptible); the in-process server types are not (they never
// block on I/O). These adapters bridge the two so a simulated deployment
// satisfies exactly the interfaces a TCP deployment does — including the
// push-based round-event surface, which rides the entry server's
// WaitEvents directly.

import (
	"context"
	"crypto/ed25519"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/core"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/wire"
)

// EntryAdapter exposes an in-process entry server through core's
// ctx-aware EntryServer, StatusProvider, and RoundWatcher interfaces.
type EntryAdapter struct {
	E *entry.Server
}

var (
	_ core.EntryServer    = EntryAdapter{}
	_ core.StatusProvider = EntryAdapter{}
	_ core.RoundWatcher   = EntryAdapter{}
)

// Settings implements core.EntryServer.
func (a EntryAdapter) Settings(ctx context.Context, service wire.Service, round uint32) (*wire.RoundSettings, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.E.Settings(service, round)
}

// Submit implements core.EntryServer.
func (a EntryAdapter) Submit(ctx context.Context, service wire.Service, round uint32, onion []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return a.E.Submit(service, round, onion)
}

// Status implements core.StatusProvider.
func (a EntryAdapter) Status(ctx context.Context, service wire.Service) (entry.RoundStatus, error) {
	if err := ctx.Err(); err != nil {
		return entry.RoundStatus{}, err
	}
	return a.E.Status(service), nil
}

// WatchRounds implements core.RoundWatcher on the entry server's event
// log: it parks until announcements after cursor exist or ctx ends.
func (a EntryAdapter) WatchRounds(ctx context.Context, cursor uint64) ([]entry.Announcement, uint64, error) {
	events, next, _ := a.E.WaitEvents(ctx, cursor, 0)
	if len(events) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, cursor, err
		}
		return nil, next, nil
	}
	return events, next, nil
}

// CDNAdapter exposes an in-process CDN store through core's ctx-aware
// MailboxStore interface.
type CDNAdapter struct {
	S *cdn.Store
}

var _ core.MailboxStore = CDNAdapter{}

// Fetch implements core.MailboxStore.
func (a CDNAdapter) Fetch(ctx context.Context, service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.S.Fetch(service, round, mailbox)
}

// FetchRange implements core.MailboxStore.
func (a CDNAdapter) FetchRange(ctx context.Context, service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.S.FetchRange(service, fromRound, toRound, mailbox)
}

// PKGAdapter exposes an in-process PKG server through core's ctx-aware
// PKG interface.
type PKGAdapter struct {
	P *pkgserver.Server
}

var _ core.PKG = PKGAdapter{}

// Register implements core.PKG.
func (a PKGAdapter) Register(ctx context.Context, email string, signingKey ed25519.PublicKey) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return a.P.Register(email, signingKey)
}

// ConfirmRegistration implements core.PKG.
func (a PKGAdapter) ConfirmRegistration(ctx context.Context, email, token string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return a.P.ConfirmRegistration(email, token)
}

// Extract implements core.PKG.
func (a PKGAdapter) Extract(ctx context.Context, email string, round uint32, sig []byte) (*pkgserver.ExtractReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.P.Extract(email, round, sig)
}

// Deregister implements core.PKG.
func (a PKGAdapter) Deregister(ctx context.Context, email string, sig []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return a.P.Deregister(email, sig)
}
