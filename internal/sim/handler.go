package sim

import (
	"crypto/ed25519"
	"sync"
	"time"

	"alpenhorn/internal/core"
)

// Handler is a recording core.Handler for tests and examples. Its policy
// fields decide behaviour; its slices record every event.
type Handler struct {
	// AcceptAll makes NewFriend accept every request; otherwise Accept
	// decides (nil Accept rejects everything).
	AcceptAll bool
	Accept    func(email string) bool

	mu         sync.Mutex
	NewFriends []string
	Confirmed  []string
	Incoming   []core.Call
	Outgoing   []core.Call
	Errors     []error
}

var _ core.Handler = (*Handler)(nil)

// NewFriend implements core.Handler.
func (h *Handler) NewFriend(email string, _ ed25519.PublicKey) bool {
	h.mu.Lock()
	h.NewFriends = append(h.NewFriends, email)
	h.mu.Unlock()
	if h.AcceptAll {
		return true
	}
	if h.Accept != nil {
		return h.Accept(email)
	}
	return false
}

// ConfirmedFriend implements core.Handler.
func (h *Handler) ConfirmedFriend(email string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Confirmed = append(h.Confirmed, email)
}

// IncomingCall implements core.Handler.
func (h *Handler) IncomingCall(call core.Call) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Incoming = append(h.Incoming, call)
}

// OutgoingCall implements core.Handler.
func (h *Handler) OutgoingCall(call core.Call) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Outgoing = append(h.Outgoing, call)
}

// Error implements core.Handler.
func (h *Handler) Error(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Errors = append(h.Errors, err)
}

// IncomingCalls returns a snapshot of recorded incoming calls.
func (h *Handler) IncomingCalls() []core.Call {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]core.Call, len(h.Incoming))
	copy(out, h.Incoming)
	return out
}

// OutgoingCalls returns a snapshot of recorded outgoing calls.
func (h *Handler) OutgoingCalls() []core.Call {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]core.Call, len(h.Outgoing))
	copy(out, h.Outgoing)
	return out
}

// waitFor polls a recorded-event predicate until it holds or the timeout
// expires. The handlers record events from Run's loop goroutines, so the
// examples and tests wait instead of assuming round timing.
func (h *Handler) waitFor(timeout time.Duration, ok func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		done := ok()
		h.mu.Unlock()
		if done {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitConfirmed waits until a friendship with email is confirmed.
func (h *Handler) WaitConfirmed(email string, timeout time.Duration) bool {
	return h.waitFor(timeout, func() bool {
		for _, e := range h.Confirmed {
			if e == email {
				return true
			}
		}
		return false
	})
}

// WaitIncoming waits until at least n incoming calls were recorded and
// returns them.
func (h *Handler) WaitIncoming(n int, timeout time.Duration) ([]core.Call, bool) {
	ok := h.waitFor(timeout, func() bool { return len(h.Incoming) >= n })
	return h.IncomingCalls(), ok
}

// WaitOutgoing waits until at least n outgoing calls were recorded and
// returns them.
func (h *Handler) WaitOutgoing(n int, timeout time.Duration) ([]core.Call, bool) {
	ok := h.waitFor(timeout, func() bool { return len(h.Outgoing) >= n })
	return h.OutgoingCalls(), ok
}

// ErrorCount returns the number of recorded errors.
func (h *Handler) ErrorCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.Errors)
}

// LastError returns the most recently recorded error, or nil.
func (h *Handler) LastError() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.Errors) == 0 {
		return nil
	}
	return h.Errors[len(h.Errors)-1]
}
