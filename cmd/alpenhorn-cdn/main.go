// Command alpenhorn-cdn runs one node of an Alpenhorn deployment's CDN
// tier: durable storage for sealed rounds' mailboxes, the client fetch
// surface, and replication with its peer nodes so every node ends up
// holding every round. Mailbox content is public — the privacy analysis
// ends when the last mixer publishes — so this tier is ordinary
// replicated storage and clients may fetch from any node (the directory's
// cdn_addrs list, failover via the client's CDN pool).
//
// A 2-node tier:
//
//	alpenhorn-cdn -addr cdnA:7030 -ingest cdnA:7031 \
//	    -data-dir /var/lib/alpenhorn-cdn -peers cdnB:7031
//	alpenhorn-cdn -addr cdnB:7030 -ingest cdnB:7031 \
//	    -data-dir /var/lib/alpenhorn-cdn -peers cdnA:7031
//
// with the coordinator's -cdn-public-addr pointed at either node's
// -ingest and -cdns listing both nodes' -addr. Rounds published to one
// node replicate to the other; a node that restarts reloads its sealed
// rounds from disk byte-identically and backfills whatever it missed
// from its peers.
//
// -ingest serves cdn.publish and cdn.replicate: UNAUTHENTICATED WRITE
// surfaces that must stay off the client network (same plane split as
// alpenhorn-entry's -cdn-addr). -addr serves only reads.
//
// With -data-dir unset the node stores rounds in memory (tests, ephemeral
// deployments); rounds then survive neither restart nor crash, but peers
// still backfill the node when it returns.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/rpc"
)

func main() {
	addr := flag.String("addr", ":7030", "client-facing TCP address serving cdn.fetch/cdn.fetchrange")
	ingest := flag.String("ingest", ":7031", "server-plane TCP address serving cdn.publish/cdn.replicate (unauthenticated write surfaces; keep off the client network)")
	dataDir := flag.String("data-dir", "", "directory for durable round segments (empty: in-memory store)")
	peerList := flag.String("peers", "", "comma-separated -ingest addresses of the tier's other nodes; sealed rounds push to them and missing rounds backfill from them")
	retention := flag.Int("retention", 64, "rounds retained per service (0: unbounded)")
	flag.Parse()

	var store *cdn.Store
	var err error
	if *dataDir != "" {
		store, err = cdn.OpenDiskStore(*dataDir, *retention)
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		log.Printf("durable store at %s (retention %d rounds/service)", *dataDir, *retention)
	} else {
		store = cdn.NewStore(*retention)
		log.Printf("in-memory store (retention %d rounds/service)", *retention)
	}

	ingestSrv := rpc.NewServer()
	daemon := rpc.RegisterCDN(ingestSrv, store)
	ingestBound, err := ingestSrv.Listen(*ingest)
	if err != nil {
		log.Fatalf("ingest listener: %v", err)
	}
	defer ingestSrv.Close()
	log.Printf("ingest surface (cdn.publish/cdn.replicate) listening on %s", ingestBound)

	if *peerList != "" {
		peers := strings.Split(*peerList, ",")
		daemon.SetPeers(peers...)
		defer daemon.Close()
		// A node that was down while rounds sealed recovers them now;
		// a failed backfill is not fatal — the next publish still
		// replicates here, and the operator can restart to retry.
		recovered, err := daemon.Backfill()
		if err != nil {
			log.Printf("backfill from %v: %v (recovered %d rounds)", peers, err, recovered)
		} else if recovered > 0 {
			log.Printf("backfilled %d rounds from %v", recovered, peers)
		}
	}

	readSrv := rpc.NewServer()
	rpc.RegisterCDNFrontend(readSrv, store)
	bound, err := readSrv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer readSrv.Close()
	log.Printf("alpenhorn-cdn listening on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	if err := store.Close(); err != nil {
		log.Printf("closing store: %v", err)
	}
}
