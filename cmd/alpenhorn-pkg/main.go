// Command alpenhorn-pkg runs one Alpenhorn private-key generator (PKG)
// server as a network daemon.
//
// A deployment runs several of these, operated by independent parties; the
// system stays private as long as any one of them is honest. Example:
//
//	alpenhorn-pkg -addr :7001 -name pkg0
//
// Registration confirmations are "delivered" through the in-memory email
// provider and logged to stdout (a real deployment plugs in SMTP); the
// -inbox-dir flag writes each confirmation message to a file so that local
// clients can complete registration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"alpenhorn/internal/email"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/rpc"
)

// fileProvider writes confirmation emails to files so local test clients
// can read their "inbox" — the single-machine stand-in for SMTP delivery.
type fileProvider struct {
	dir string
}

func (p fileProvider) Send(msg email.Message) error {
	if !email.ValidAddress(msg.To) {
		return fmt.Errorf("invalid address %q", msg.To)
	}
	log.Printf("confirmation email for %s (token delivered to inbox dir)", msg.To)
	name := strings.ReplaceAll(msg.To, "@", "_at_") + ".token"
	return os.WriteFile(filepath.Join(p.dir, name), []byte(msg.Body), 0o600)
}

func main() {
	addr := flag.String("addr", ":7001", "TCP address to listen on")
	name := flag.String("name", "pkg", "PKG name (appears in logs and email From lines)")
	inboxDir := flag.String("inbox-dir", "", "directory for confirmation-token files (default: temp dir)")
	flag.Parse()

	dir := *inboxDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "alpenhorn-pkg-inbox-")
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		log.Fatal(err)
	}

	pkg, err := pkgserver.New(pkgserver.Config{
		Name:     *name,
		Provider: fileProvider{dir: dir},
	})
	if err != nil {
		log.Fatal(err)
	}

	server := rpc.NewServer()
	rpc.RegisterPKG(server, pkg)
	bound, err := server.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("alpenhorn-pkg %q listening on %s", *name, bound)
	log.Printf("long-term signing key: %x", pkg.SigningKey())
	log.Printf("confirmation tokens written to %s", dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	server.Close()
}
