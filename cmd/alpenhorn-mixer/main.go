// Command alpenhorn-mixer runs one Alpenhorn mixnet server as a network
// daemon.
//
// Mixers form a fixed chain; each daemon is started with its position.
// The anytrust guarantee needs only one honest mixer in the chain.
//
//	alpenhorn-mixer -addr :7101 -position 0 -chain 3
//	alpenhorn-mixer -addr :7102 -position 1 -chain 3
//	alpenhorn-mixer -addr :7103 -position 2 -chain 3
//
// One position may be SHARDED across several machines run by the same
// operator — they jointly peel the position's batch, divide its noise,
// and merge into a single full-batch shuffle on one member:
//
//	alpenhorn-mixer -addr :7102 -position 1 -chain 3 -shard 0/2
//	alpenhorn-mixer -addr :7112 -position 1 -chain 3 -shard 1/2
//
// The entry daemon groups mixers by their advertised position and shard
// index; the coordinator plans the shard routes each round. Shard 0 is
// the position's ANNOUNCER — it signs the round announcements clients
// verify, so its signing key is the pinned one — while the merge/build
// lead role rotates round-robin across the group (the shuffle
// permutation is derived from the round key, so rotation never changes
// a round's output). Round keys move inside the group over the server
// plane (mix.round.exportkey, gated to the round's planned peers) —
// keep mixer addresses off the client network.
//
// A machine may instead stand by as a hot SPARE (-spare): it advertises
// no fixed slot, and the coordinator drafts it into whichever benched
// member's slot needs covering that round:
//
//	alpenhorn-mixer -addr :7122 -position 1 -chain 3 -spare
//
// The daemon serves both data planes: coordinator-relayed streaming, and
// chain-forwarding, where the coordinator assigns it a successor address
// each round (mix.round.route) and the daemon pushes its post-shuffle
// output straight to that successor — or, at the end of the chain,
// publishes the round's mailboxes directly to the CDN. Successor
// connections are dialed with retry/backoff and reused across rounds.
//
// The -addfriend-mu and -dialing-mu flags set the per-mailbox noise means
// (paper defaults: 4000 and 25000; use small values for local testing).
// -legacy serves only the pre-streaming surface, standing in for an old
// build when rehearsing rolling upgrades.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/rpc"
)

func main() {
	addr := flag.String("addr", ":7101", "TCP address to listen on")
	name := flag.String("name", "mixer", "server name for logs")
	position := flag.Int("position", 0, "position in the mix chain (0 = first)")
	chain := flag.Int("chain", 3, "total servers in the chain")
	afMu := flag.Float64("addfriend-mu", noise.AddFriendNoise.Mu, "mean add-friend noise per mailbox")
	afB := flag.Float64("addfriend-b", noise.AddFriendNoise.B, "add-friend noise scale (0 = deterministic)")
	dlMu := flag.Float64("dialing-mu", noise.DialingNoise.Mu, "mean dialing noise per mailbox")
	dlB := flag.Float64("dialing-b", noise.DialingNoise.B, "dialing noise scale (0 = deterministic)")
	legacy := flag.Bool("legacy", false, "serve only the pre-streaming RPC surface (rolling-upgrade rehearsal)")
	shard := flag.String("shard", "", "shard identity i/N when N daemons jointly serve this position (e.g. 0/2; shard 0 announces for the group)")
	spare := flag.Bool("spare", false, "run as an unpinned hot spare for this position: idle until the coordinator drafts it into a benched member's slot")
	flag.Parse()

	shardIndex, shardCount := 0, 0
	if *shard != "" {
		if *spare {
			log.Fatal("-spare daemons are unpinned; drop -shard")
		}
		if _, err := fmt.Sscanf(*shard, "%d/%d", &shardIndex, &shardCount); err != nil ||
			shardCount < 1 || shardIndex < 0 || shardIndex >= shardCount {
			log.Fatalf("bad -shard %q: want i/N with 0 <= i < N", *shard)
		}
	}

	m, err := mixnet.New(mixnet.Config{
		Name:           *name,
		Position:       *position,
		ChainLength:    *chain,
		AddFriendNoise: &noise.Laplace{Mu: *afMu, B: *afB},
		DialingNoise:   &noise.Laplace{Mu: *dlMu, B: *dlB},
		ShardIndex:     shardIndex,
		ShardCount:     shardCount,
		Spare:          *spare,
	})
	if err != nil {
		log.Fatal(err)
	}

	server := rpc.NewServer()
	var daemon *rpc.MixerDaemon
	if *legacy {
		rpc.RegisterLegacyMixer(server, m)
	} else {
		daemon = rpc.RegisterMixer(server, m)
	}
	bound, err := server.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	shardLabel := "unsharded"
	if *spare {
		shardLabel = "hot spare"
	} else if shardCount > 0 {
		shardLabel = fmt.Sprintf("shard %d/%d", shardIndex, shardCount)
	}
	log.Printf("alpenhorn-mixer %q (position %d/%d, %s) listening on %s (legacy=%v)", *name, *position, *chain, shardLabel, bound, *legacy)
	log.Printf("long-term signing key: %x", m.SigningKey())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	if daemon != nil {
		if r, o := daemon.PendingRoutes(), daemon.PendingOutboxes(); r > 0 || o > 0 {
			log.Printf("warning: %d routes and %d outboxes still pending at shutdown", r, o)
		}
	}
	server.Close()
}
