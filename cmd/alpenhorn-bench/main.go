// Command alpenhorn-bench regenerates the data series behind every figure
// and measured claim in the Alpenhorn paper's evaluation (§8).
//
//	alpenhorn-bench -fig 6          # add-friend bandwidth vs round duration
//	alpenhorn-bench -fig 7          # dialing bandwidth vs round duration
//	alpenhorn-bench -fig 8          # add-friend latency vs users/servers
//	alpenhorn-bench -fig 9          # dialing latency vs users/servers
//	alpenhorn-bench -fig 10         # latency under Zipf-skewed popularity
//	alpenhorn-bench -exp sizes      # message sizes vs paper
//	alpenhorn-bench -exp extraction # key-extraction latency vs #PKGs
//	alpenhorn-bench -exp ibe-sweep  # IBE cost scaling (§8.6)
//	alpenhorn-bench -exp ibe-bench  # T1/T4 pairing throughput (decrypts, extractions, mailbox scan)
//	alpenhorn-bench -exp mix-cal    # measure per-message mix cost (used by figs 8/9)
//	alpenhorn-bench -exp mix-compare # sequential vs parallel vs pipelined round cost
//	alpenhorn-bench -exp chain-forward # relayed vs server-forwarded data plane over TCP
//	alpenhorn-bench -exp shard-compare # unsharded vs shard-group positions over TCP
//	alpenhorn-bench -exp churn      # round availability with hot spares under daemon kills
//	alpenhorn-bench -exp status-load # 500 ms status pollers vs entry.events streamers
//	alpenhorn-bench -exp fanout-load # waiter-scale fan-out + V2 vs V1 tracking requests
//	alpenhorn-bench -exp cdn-load   # CDN seal throughput, fetch p50/p99, replication lag
//	alpenhorn-bench -all            # everything
//
// -json FILE writes the shard-compare / churn / status-load /
// fanout-load / ibe-bench / cdn-load results as a JSON record (CI
// uploads them per PR to track the perf trajectory).
//
// The -parallelism flag sets the mixers' decryption/noise worker count for
// every experiment that runs real rounds (0 = GOMAXPROCS, 1 = the
// sequential pre-pipeline path).
//
// Figures 6/7/10 come from the analytic model driven by this codebase's
// real message sizes (cross-validated against real rounds in the test
// suite). Figures 8/9 splice a measured per-message mix cost from a real
// in-process round into the latency model, and print both "ours" (big.Int
// pairing) and "paper-calibrated" (assembly-pairing cost constants) series
// so shape and absolute scale can be compared. See EXPERIMENTS.md.
package main

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/core"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/model"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

func main() {
	fig := flag.Int("fig", 0, "paper figure to regenerate (6-10)")
	exp := flag.String("exp", "", "named experiment: sizes, extraction, ibe-sweep, ibe-bench, mix-cal, mix-compare, chain-forward, shard-compare, churn, status-load, fanout-load, cdn-load")
	all := flag.Bool("all", false, "run everything")
	users := flag.Int("calibration-batch", 4000, "batch size for real-round mix calibration")
	par := flag.Int("parallelism", 0, "mixer decryption/noise workers (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.String("json", "", "write machine-readable results (shard-compare, status-load, fanout-load, ibe-bench, cdn-load) to this file")
	baseline := flag.String("baseline", "", "committed ibe-bench JSON record to diff speedup ratios against; exits nonzero on >30% regression")
	flag.Parse()
	parallelism = *par
	jsonPath = *jsonOut
	baselinePath = *baseline

	any := false
	run := func(n int, name string, fn func(batch int)) {
		if *all || *fig == n || (*exp != "" && *exp == name) {
			fn(*users)
			any = true
		}
	}
	run(6, "", fig6)
	run(7, "", fig7)
	run(8, "", fig8)
	run(9, "", fig9)
	run(10, "", fig10)
	run(-1, "sizes", func(int) { sizes() })
	run(-1, "extraction", func(int) { extraction() })
	run(-1, "ibe-sweep", func(int) { ibeSweep() })
	run(-1, "ibe-bench", func(int) { ibeBench() })
	run(-1, "mix-cal", func(batch int) { fmt.Printf("mix cost: %.2f µs/message/server\n", measureMixCost(batch)*1e6) })
	run(-1, "mix-compare", mixCompare)
	run(-1, "chain-forward", chainForwardCompare)
	run(-1, "shard-compare", shardCompare)
	run(-1, "churn", churnBench)
	run(-1, "status-load", func(int) { statusLoad() })
	run(-1, "fanout-load", func(int) { fanoutLoad() })
	run(-1, "cdn-load", func(int) { cdnLoad() })
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

// parallelism is the -parallelism flag: mixer worker count for every
// experiment that runs real rounds.
var parallelism int

// jsonPath is the -json flag: where JSON-writing experiments record
// results. With -all, several experiments write JSON in one run; the
// first keeps the given path and later ones append their name, so no
// record silently clobbers another.
var jsonPath string

// baselinePath is the -baseline flag: a previously committed ibe-bench
// record whose speedup ratios gate the fresh run (see checkIBEBaseline).
// The baseline is read before writeJSONRecord runs, so pointing -json and
// -baseline at the same file compares against the old record, then
// replaces it.
var baselinePath string

// jsonPathUsedBy remembers which experiment wrote jsonPath verbatim.
var jsonPathUsedBy string

// writeJSONRecord writes one experiment's record to the -json path (or a
// derived "<path>.<exp>.json" when another experiment already claimed the
// path this run) and prints where it went.
func writeJSONRecord(exp string, record any) {
	if jsonPath == "" {
		return
	}
	path := jsonPath
	if jsonPathUsedBy == "" {
		jsonPathUsedBy = exp
	} else if jsonPathUsedBy != exp {
		path = jsonPath + "." + exp + ".json"
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// fig6 prints Figure 6: add-friend client bandwidth vs round duration.
func fig6(int) {
	header("Figure 6: add-friend client bandwidth vs round duration")
	durations := []float64{0.5, 1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24} // hours
	fmt.Printf("%-10s %12s %12s %12s\n", "round(h)", "100K(KB/s)", "1M(KB/s)", "10M(KB/s)")
	for _, h := range durations {
		fmt.Printf("%-10.1f", h)
		for _, u := range []float64{1e5, 1e6, 1e7} {
			p := model.PaperParams(u, 3)
			fmt.Printf(" %12.3f", p.AddFriendBandwidth(h*3600)/1024)
		}
		fmt.Println()
	}
	p := model.PaperParams(1e6, 3)
	mb := p.AddFriendMailboxModel()
	fmt.Printf("\n1M users: %d mailboxes, %.0f real + %.0f noise requests each, %.1f MB/mailbox\n",
		int(mb.NumMailboxes), mb.RealRequests, mb.NoiseRequests, mb.Bytes/1e6)
	fmt.Printf("(paper: 4 mailboxes, ~12000+12000 requests, 7.4 MB at 308 B/request;\n")
	fmt.Printf(" ours uses %d B/request — uncompressed BN254 points)\n", wire.EncryptedFriendRequestSize)
}

// fig7 prints Figure 7: dialing client bandwidth vs round duration.
func fig7(int) {
	header("Figure 7: dialing client bandwidth vs round duration")
	durations := []float64{1, 2, 3, 4, 5, 8, 10} // minutes
	fmt.Printf("%-10s %12s %12s %12s\n", "round(min)", "100K(KB/s)", "1M(KB/s)", "10M(KB/s)")
	for _, m := range durations {
		fmt.Printf("%-10.0f", m)
		for _, u := range []float64{1e5, 1e6, 1e7} {
			p := model.PaperParams(u, 3)
			fmt.Printf(" %12.3f", p.DialingBandwidth(m*60)/1024)
		}
		fmt.Println()
	}
	for _, u := range []float64{1e6, 1e7} {
		mb := model.PaperParams(u, 3).DialingMailboxModel()
		fmt.Printf("\n%.0fM users: %d Bloom filters, %.0f tokens each, %.2f MB/filter",
			u/1e6, int(mb.NumMailboxes), mb.RealTokens+mb.NoiseTokens, mb.Bytes/1e6)
	}
	fmt.Printf("\n(paper: 1 filter/125K tokens/0.75 MB at 1M; 7 filters/150K/0.9 MB at 10M)\n")
}

// newBenchCoordinator builds a 3-mixer in-process deployment with the
// requested mixer parallelism and a submitted batch, ready to close.
func newBenchCoordinator(batchSize, workers int, sequential bool) *coordinator.Coordinator {
	nz := noise.Laplace{Mu: 2, B: 0}
	var mixers []*mixnet.Server
	for i := 0; i < 3; i++ {
		m, err := mixnet.New(mixnet.Config{
			Name: "m", Position: i, ChainLength: 3,
			AddFriendNoise: &nz, DialingNoise: &nz,
			Parallelism: workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		mixers = append(mixers, m)
	}
	e := entry.New()
	coord := coordinator.New(e, mixers, nil, cdn.NewStore(2))
	coord.Sequential = sequential
	coord.SetExpectedVolume(wire.Dialing, batchSize)
	settings, err := coord.OpenDialingRound(1)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := sim.GenerateBatch(nil, settings, sim.Workload{
		Real: batchSize / 20, Cover: batchSize - batchSize/20,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, onion := range batch {
		if err := e.Submit(wire.Dialing, 1, onion); err != nil {
			log.Fatal(err)
		}
	}
	return coord
}

// measureMixCost runs a real dialing round through a 3-server in-process
// chain and returns seconds per message per server. The chain runs with
// full-batch barriers (Sequential) so that dividing by the server count is
// meaningful — with the streaming pipeline the stages overlap and the
// per-server cost would be undercounted. -parallelism 1 reproduces the
// paper's single-thread calibration; the default measures this machine's
// parallel decrypt rate. Pipeline gains are measured by mix-compare.
func measureMixCost(batchSize int) float64 {
	coord := newBenchCoordinator(batchSize, parallelism, true)
	start := time.Now()
	if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
		log.Fatal(err)
	}
	return time.Since(start).Seconds() / float64(batchSize) / 3
}

// mixCompare prints the sequential-vs-parallel-vs-pipelined round cost
// comparison for the refactored mix chain.
func mixCompare(batchSize int) {
	header("Mix execution modes: sequential vs parallel vs pipelined")
	fmt.Printf("3 servers, dialing, batch %d, GOMAXPROCS %d\n\n", batchSize, runtime.GOMAXPROCS(0))
	modes := []struct {
		name       string
		workers    int
		sequential bool
	}{
		{"sequential (1 worker, full-batch barriers)", 1, true},
		{"parallel decrypt (worker pool, full-batch barriers)", 0, true},
		{"pipelined (worker pool + streaming chunks + prepared noise)", 0, false},
	}
	var base float64
	for i, mode := range modes {
		coord := newBenchCoordinator(batchSize, mode.workers, mode.sequential)
		start := time.Now()
		if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		if i == 0 {
			base = elapsed
		}
		fmt.Printf("%-60s %8.3f s   %6.2fx\n", mode.name, elapsed, base/elapsed)
	}
	fmt.Println("\n(speedups require multiple cores; on one core the modes should tie)")
}

// chainForwardCompare measures the data-plane refactor over real TCP: a
// 3-daemon chain driven (a) with the coordinator relaying every server's
// output, (b) with the servers forwarding to each other and publishing to
// the CDN directly, and (c) with one pre-streaming (legacy) daemon forcing
// the rolling-upgrade fallback. For each mode it reports the round's wall
// time and the bytes that crossed the coordinator's mixer connections —
// the quantity the chain-forward refactor takes off the coordinator.
func chainForwardCompare(batchSize int) {
	header("Data plane: coordinator-relayed vs chain-forwarded (3 mixer daemons over TCP)")
	fmt.Printf("dialing, batch %d, GOMAXPROCS %d\n\n", batchSize, runtime.GOMAXPROCS(0))

	runMode := func(forward, legacyFirst bool) (elapsed float64, coordBytes uint64, published bool) {
		nz := noise.Laplace{Mu: 2, B: 0}
		var clients []*rpc.MixerClient
		var servers []*rpc.Server
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		for i := 0; i < 3; i++ {
			m, err := mixnet.New(mixnet.Config{
				Name: "m", Position: i, ChainLength: 3,
				AddFriendNoise: &nz, DialingNoise: &nz,
				Parallelism: parallelism,
			})
			if err != nil {
				log.Fatal(err)
			}
			srv := rpc.NewServer()
			if legacyFirst && i == 0 {
				rpc.RegisterLegacyMixer(srv, m)
			} else {
				rpc.RegisterMixer(srv, m)
			}
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			servers = append(servers, srv)
			mc, err := rpc.DialMixer(addr)
			if err != nil {
				log.Fatal(err)
			}
			clients = append(clients, mc)
		}
		store := cdn.NewStore(2)
		cdnSrv := rpc.NewServer()
		rpc.RegisterCDN(cdnSrv, store)
		cdnAddr, err := cdnSrv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, cdnSrv)

		e := entry.New()
		coord := &coordinator.Coordinator{
			Entry: e, CDN: store,
			TargetRequestsPerMailbox: 24000,
			ChainForward:             forward,
			CDNAddr:                  cdnAddr,
		}
		for _, mc := range clients {
			coord.Mixers = append(coord.Mixers, mc)
		}
		coord.SetExpectedVolume(wire.Dialing, batchSize)
		settings, err := coord.OpenDialingRound(1)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := sim.GenerateBatch(nil, settings, sim.Workload{
			Real: batchSize / 20, Cover: batchSize - batchSize/20,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, onion := range batch {
			if err := e.Submit(wire.Dialing, 1, onion); err != nil {
				log.Fatal(err)
			}
		}
		before := uint64(0)
		for _, mc := range clients {
			st := mc.TransportStats()
			before += st.BytesSent + st.BytesReceived
		}
		start := time.Now()
		if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
			log.Fatal(err)
		}
		after := uint64(0)
		for _, mc := range clients {
			st := mc.TransportStats()
			after += st.BytesSent + st.BytesReceived
		}
		return time.Since(start).Seconds(), after - before, store.Published(wire.Dialing, 1)
	}

	modes := []struct {
		name            string
		forward, legacy bool
	}{
		{"coordinator-relayed (batch crosses coordinator per hop)", false, false},
		{"chain-forwarded (servers push to successors + CDN)", true, false},
		{"legacy daemon in chain (fallback to relayed)", true, true},
	}
	for _, mode := range modes {
		elapsed, coordBytes, published := runMode(mode.forward, mode.legacy)
		status := "ok"
		if !published {
			status = "NOT PUBLISHED"
		}
		fmt.Printf("%-58s %8.3f s   %10.2f MB coordinator traffic   %s\n",
			mode.name, elapsed, float64(coordBytes)/1e6, status)
	}
	fmt.Println("\n(chain-forward moves the per-hop batch traffic off the coordinator;")
	fmt.Println(" the remaining coordinator bytes are the entry batch to mixer 0 plus control)")
}

// shardCompare measures intra-round mixer sharding over real TCP: the
// same dialing round run through (a) three unsharded daemons and (b)
// three positions each sharded across two daemons (six total). Sharding
// splits each position's onion peeling and noise generation across
// machines, at the cost of an intra-group merge hop before the
// position's full-batch shuffle; on a single box the win is bounded by
// core count, so this experiment primarily records the TRAJECTORY (and
// proves the sharded plane end-to-end) — the -json record is uploaded
// per PR by CI.
func shardCompare(batchSize int) {
	header("Shard groups: one position per machine vs two machines per position (over TCP)")
	fmt.Printf("dialing, batch %d, GOMAXPROCS %d\n\n", batchSize, runtime.GOMAXPROCS(0))

	type modeResult struct {
		Name        string  `json:"name"`
		ShardsPer   int     `json:"shards_per_position"`
		Seconds     float64 `json:"seconds"`
		CoordMB     float64 `json:"coordinator_mb"`
		Published   bool    `json:"published"`
		MergeShards int     `json:"daemons_total"`
	}

	runMode := func(shardsPerPos int) modeResult {
		const positions = 3
		nz := noise.Laplace{Mu: 2, B: 0}
		var servers []*rpc.Server
		defer func() {
			for _, s := range servers {
				s.Close()
			}
		}()
		leads := make([]*rpc.MixerClient, 0, positions)
		extras := make([][]coordinator.Mixer, positions)
		var all []*rpc.MixerClient
		for i := 0; i < positions; i++ {
			for s := 0; s < shardsPerPos; s++ {
				cfg := mixnet.Config{
					Name: "m", Position: i, ChainLength: positions,
					AddFriendNoise: &nz, DialingNoise: &nz,
					Parallelism: parallelism,
				}
				if shardsPerPos > 1 {
					cfg.ShardIndex, cfg.ShardCount = s, shardsPerPos
				}
				m, err := mixnet.New(cfg)
				if err != nil {
					log.Fatal(err)
				}
				srv := rpc.NewServer()
				rpc.RegisterMixer(srv, m)
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					log.Fatal(err)
				}
				servers = append(servers, srv)
				mc, err := rpc.DialMixer(addr)
				if err != nil {
					log.Fatal(err)
				}
				all = append(all, mc)
				if s == 0 {
					leads = append(leads, mc)
				} else {
					extras[i] = append(extras[i], mc)
				}
			}
		}
		store := cdn.NewStore(2)
		cdnSrv := rpc.NewServer()
		rpc.RegisterCDN(cdnSrv, store)
		cdnAddr, err := cdnSrv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, cdnSrv)

		e := entry.New()
		coord := &coordinator.Coordinator{
			Entry: e, CDN: store,
			TargetRequestsPerMailbox: 24000,
			ChainForward:             true,
			CDNAddr:                  cdnAddr,
			Shards:                   extras,
		}
		for _, mc := range leads {
			coord.Mixers = append(coord.Mixers, mc)
		}
		coord.SetExpectedVolume(wire.Dialing, batchSize)
		settings, err := coord.OpenDialingRound(1)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := sim.GenerateBatch(nil, settings, sim.Workload{
			Real: batchSize / 20, Cover: batchSize - batchSize/20,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, onion := range batch {
			if err := e.Submit(wire.Dialing, 1, onion); err != nil {
				log.Fatal(err)
			}
		}
		before := uint64(0)
		for _, mc := range all {
			st := mc.TransportStats()
			before += st.BytesSent + st.BytesReceived
		}
		start := time.Now()
		if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
			log.Fatal(err)
		}
		after := uint64(0)
		for _, mc := range all {
			st := mc.TransportStats()
			after += st.BytesSent + st.BytesReceived
		}
		name := "unsharded (1 daemon per position)"
		if shardsPerPos > 1 {
			name = fmt.Sprintf("sharded (%d daemons per position)", shardsPerPos)
		}
		return modeResult{
			Name:        name,
			ShardsPer:   shardsPerPos,
			Seconds:     time.Since(start).Seconds(),
			CoordMB:     float64(after-before) / 1e6,
			Published:   store.Published(wire.Dialing, 1),
			MergeShards: positions * shardsPerPos,
		}
	}

	var results []modeResult
	for _, shardsPerPos := range []int{1, 2} {
		r := runMode(shardsPerPos)
		status := "ok"
		if !r.Published {
			status = "NOT PUBLISHED"
		}
		fmt.Printf("%-44s %8.3f s   %8.2f MB coordinator traffic   %s\n", r.Name, r.Seconds, r.CoordMB, status)
		results = append(results, r)
	}
	fmt.Println("\n(each position's peel + noise splits across its shards; the position's")
	fmt.Println(" permutation stays one full-batch shuffle, run at the group's merge)")

	writeJSONRecord("shard-compare", struct {
		Experiment string       `json:"experiment"`
		Batch      int          `json:"batch"`
		GoMaxProcs int          `json:"gomaxprocs"`
		Modes      []modeResult `json:"modes"`
	}{"shard-compare", batchSize, runtime.GOMAXPROCS(0), results})
}

// statusLoad measures the frontend's per-client request load for round
// tracking: N clients following M dialing rounds through Client.Run, once
// against a push frontend (entry.events long-poll) and once against a
// poll-only frontend (500 ms frontend.status polling — the pre-event-
// stream client behaviour). At the ROADMAP's million-user scale the
// 2 Hz × 2-service status polling is the frontend's dominant request
// source; this experiment records what the push surface takes off it.
func statusLoad() {
	header("Frontend status load: 500 ms pollers vs entry.events streamers (over TCP)")
	// Round pacing matters: a poller's cost is poll-rate x round length
	// regardless of activity, a streamer's is per-event. 2.5 s rounds are
	// already conservative (the entry daemon defaults to 10 s dialing
	// rounds, where the gap is ~4x wider still).
	const (
		numClients    = 4
		numRounds     = 4
		roundInterval = 2500 * time.Millisecond
	)
	fmt.Printf("%d clients, %d dialing rounds, %v per round\n\n", numClients, numRounds, roundInterval)

	type modeResult struct {
		Name          string  `json:"name"`
		Streaming     bool    `json:"streaming"`
		Clients       int     `json:"clients"`
		Rounds        int     `json:"rounds"`
		Tracking      uint64  `json:"tracking_requests"`
		Requests      uint64  `json:"frontend_requests"`
		Bytes         uint64  `json:"frontend_bytes"`
		PerClientRate float64 `json:"tracking_per_client_per_round"`
	}

	runMode := func(streaming bool) modeResult {
		network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1})
		if err != nil {
			log.Fatal(err)
		}
		srv := rpc.NewServer()
		if streaming {
			rpc.RegisterFrontend(srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
		} else {
			rpc.RegisterPollFrontend(srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var frontends []*rpc.FrontendClient
		for i := 0; i < numClients; i++ {
			fe := rpc.DialFrontend(addr)
			frontends = append(frontends, fe)
			h := &sim.Handler{AcceptAll: true}
			cfg := network.ClientConfig(fmt.Sprintf("user%d@bench.example", i), h)
			cfg.Entry = fe
			cfg.Mailboxes = fe
			client, err := core.NewClient(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := client.Register(ctx); err != nil {
				log.Fatal(err)
			}
			if err := network.ConfirmAll(client); err != nil {
				log.Fatal(err)
			}
			handle, err := client.ConnectDialing(ctx)
			if err != nil {
				log.Fatal(err)
			}
			defer handle.Close()
		}

		for r := uint32(1); r <= numRounds; r++ {
			start := time.Now()
			if _, err := network.Coord.OpenDialingRound(r); err != nil {
				log.Fatal(err)
			}
			for network.Entry.BatchSize(wire.Dialing, r) < numClients && time.Since(start) < 10*time.Second {
				time.Sleep(2 * time.Millisecond)
			}
			if remaining := roundInterval - time.Since(start); remaining > 0 {
				time.Sleep(remaining)
			}
			if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
				log.Fatal(err)
			}
		}
		// Let the final scans land before counting.
		time.Sleep(300 * time.Millisecond)
		cancel()

		res := modeResult{Streaming: streaming, Clients: numClients, Rounds: numRounds}
		if streaming {
			res.Name = "streaming (entry.events long-poll)"
		} else {
			res.Name = "polling (500 ms frontend.status)"
		}
		for _, fe := range frontends {
			res.Tracking += fe.CallCount("frontend.status") + fe.CallCount("entry.events")
			st := fe.TransportStats()
			res.Requests += st.Calls
			res.Bytes += st.BytesSent + st.BytesReceived
			fe.Close()
		}
		res.PerClientRate = float64(res.Tracking) / float64(numClients) / float64(numRounds)
		return res
	}

	var results []modeResult
	for _, streaming := range []bool{false, true} {
		r := runMode(streaming)
		fmt.Printf("%-38s %6d tracking req  %6d total req  %8.1f KB  (%.1f tracking req/client/round)\n",
			r.Name, r.Tracking, r.Requests, float64(r.Bytes)/1024, r.PerClientRate)
		results = append(results, r)
	}
	if results[1].Tracking > 0 {
		fmt.Printf("\nstreaming clients issue %.1fx fewer round-tracking requests\n",
			float64(results[0].Tracking)/float64(results[1].Tracking))
	}
	fmt.Println("(an idle streaming client costs one parked entry.events call per 25 s;")
	fmt.Println(" a poller costs 2 Hz x 2 services regardless of round activity)")

	writeJSONRecord("status-load", struct {
		Experiment string       `json:"experiment"`
		Modes      []modeResult `json:"modes"`
	}{"status-load", results})
}

// fanoutLoad measures the entry tier's fan-out core at waiter scale and the
// per-client tracking request load of the V2 event stream (settings riding
// the open announcements) against the V1 stream (per-round entry.settings
// fetch). Two parts:
//
//  1. Waiter scale, in-process: register 10k-100k Waiters on one entry
//     server and announce rounds. The goroutine count must stay FLAT —
//     one fan-out walker regardless of waiter count — and the wall cost
//     per announcement (append + coalesced wake walk) stays small. This
//     is the mechanism behind the paper's many-connections entry tier:
//     tracked clients cost a cursor and a 1-slot channel, not a parked
//     goroutine each.
//  2. Tracking requests, over TCP: N clients follow M dialing rounds
//     through Client.Run against a V2 frontend and a V1 frontend. V2
//     delivers settings inside the open event, so a round costs zero
//     entry.settings fetches; V1 (the PR 4 streaming baseline) pays one
//     verified fetch per client per round.
func fanoutLoad() {
	header("Event fan-out: waiter scale (in-process)")

	type scalePoint struct {
		Waiters         int     `json:"waiters"`
		ExtraGoroutines int     `json:"extra_goroutines"`
		NsPerEvent      float64 `json:"ns_per_event"`
	}
	const announceRounds = 50 // x2 events each (open + published)
	var scale []scalePoint
	for _, n := range []int{10_000, 50_000, 100_000} {
		runtime.GC()
		base := runtime.NumGoroutine()
		e := entry.New()
		waiters := make([]*entry.Waiter, n)
		for i := range waiters {
			waiters[i] = e.Register(0)
		}
		// Sentinel: a waiter that actually consumes, to observe the walk.
		sentinel := e.Register(0)
		after := runtime.NumGoroutine()

		start := time.Now()
		var head uint64
		for r := uint32(1); r <= announceRounds; r++ {
			settings := &wire.RoundSettings{
				Service:      wire.Dialing,
				Round:        r,
				NumMailboxes: 1,
				Mixers: []wire.MixerRoundKey{
					{OnionKey: make([]byte, 32), Sig: make([]byte, 64)},
				},
			}
			if err := e.OpenRound(settings); err != nil {
				log.Fatal(err)
			}
			e.AnnouncePublished(wire.Dialing, r)
		}
		// Wait until the sentinel has seen the final announcement, so the
		// timing includes the wake walks (back-to-back announcements
		// coalesce into few walks — that is the design, not a shortcut).
		syncCtx, syncCancel := context.WithTimeout(context.Background(), 30*time.Second)
		for head < uint64(2*announceRounds) {
			events, next, _ := sentinel.Await(syncCtx, 0)
			if len(events) == 0 {
				log.Fatalf("fan-out walk never reached the sentinel (cursor %d)", next)
			}
			head = next
		}
		syncCancel()
		elapsed := time.Since(start)

		sentinel.Close()
		for _, w := range waiters {
			w.Close()
		}
		p := scalePoint{
			Waiters:         n,
			ExtraGoroutines: after - base,
			NsPerEvent:      float64(elapsed.Nanoseconds()) / float64(2*announceRounds),
		}
		scale = append(scale, p)
		fmt.Printf("%7d waiters: %2d extra goroutines, %8.0f ns/announcement\n",
			p.Waiters, p.ExtraGoroutines, p.NsPerEvent)
	}
	fmt.Println("(goroutine count is flat: one fan-out walker total, zero per waiter)")

	header("Event stream V2 vs V1: tracking requests per client per round (over TCP)")
	const (
		numClients    = 4
		numRounds     = 3
		roundInterval = 1500 * time.Millisecond
	)
	fmt.Printf("%d clients, %d dialing rounds, %v per round\n\n", numClients, numRounds, roundInterval)

	type modeResult struct {
		Name             string  `json:"name"`
		StreamVersion    int     `json:"stream_version"`
		Clients          int     `json:"clients"`
		Rounds           int     `json:"rounds"`
		Tracking         uint64  `json:"tracking_requests"`
		SettingsFetches  uint64  `json:"settings_fetches"`
		Requests         uint64  `json:"frontend_requests"`
		PerClientRate    float64 `json:"tracking_per_client_per_round"`
		ServerGoroutines int     `json:"server_goroutines"`
	}

	runMode := func(version int) modeResult {
		network, err := sim.NewNetwork(sim.Config{NumPKGs: 1, NumMixers: 1})
		if err != nil {
			log.Fatal(err)
		}
		srv := rpc.NewServer()
		if version >= rpc.EventStreamV2 {
			rpc.RegisterFrontend(srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
		} else {
			rpc.RegisterFrontendV1(srv, network.Entry, network.CDN, rpc.Directory{NumMixers: 1})
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var frontends []*rpc.FrontendClient
		for i := 0; i < numClients; i++ {
			fe := rpc.DialFrontend(addr)
			frontends = append(frontends, fe)
			h := &sim.Handler{AcceptAll: true}
			cfg := network.ClientConfig(fmt.Sprintf("user%d@bench.example", i), h)
			cfg.Entry = fe
			cfg.Mailboxes = fe
			client, err := core.NewClient(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := client.Register(ctx); err != nil {
				log.Fatal(err)
			}
			if err := network.ConfirmAll(client); err != nil {
				log.Fatal(err)
			}
			handle, err := client.ConnectDialing(ctx)
			if err != nil {
				log.Fatal(err)
			}
			defer handle.Close()
		}

		goroutines := 0
		for r := uint32(1); r <= numRounds; r++ {
			start := time.Now()
			if _, err := network.Coord.OpenDialingRound(r); err != nil {
				log.Fatal(err)
			}
			for network.Entry.BatchSize(wire.Dialing, r) < numClients && time.Since(start) < 10*time.Second {
				time.Sleep(2 * time.Millisecond)
			}
			if r == 1 {
				// Steady state: every client submitted and is parked on its
				// event stream. One long-poll handler per connection plus
				// ONE fan-out walker, however many clients are tracked.
				goroutines = runtime.NumGoroutine()
			}
			if remaining := roundInterval - time.Since(start); remaining > 0 {
				time.Sleep(remaining)
			}
			if _, err := network.Coord.CloseRound(wire.Dialing, r); err != nil {
				log.Fatal(err)
			}
		}
		// Let the final scans land before counting.
		time.Sleep(300 * time.Millisecond)
		cancel()

		res := modeResult{StreamVersion: version, Clients: numClients, Rounds: numRounds, ServerGoroutines: goroutines}
		if version >= rpc.EventStreamV2 {
			res.Name = "V2 (settings ride the open events)"
		} else {
			res.Name = "V1 (per-round entry.settings fetch)"
		}
		for _, fe := range frontends {
			res.SettingsFetches += fe.CallCount("entry.settings")
			res.Tracking += fe.CallCount("frontend.status") + fe.CallCount("entry.events") + fe.CallCount("entry.settings")
			res.Requests += fe.TransportStats().Calls
			fe.Close()
		}
		res.PerClientRate = float64(res.Tracking) / float64(numClients) / float64(numRounds)
		return res
	}

	var modes []modeResult
	for _, version := range []int{rpc.EventStreamV1, rpc.EventStreamV2} {
		r := runMode(version)
		fmt.Printf("%-36s %5d tracking req  %4d settings fetches  %5d total req  %3d goroutines  (%.1f tracking req/client/round)\n",
			r.Name, r.Tracking, r.SettingsFetches, r.Requests, r.ServerGoroutines, r.PerClientRate)
		modes = append(modes, r)
	}
	if modes[0].Tracking > modes[1].Tracking {
		fmt.Printf("\nV2 clients issue %.1fx fewer tracking requests than the V1 streaming baseline\n",
			float64(modes[0].Tracking)/float64(modes[1].Tracking))
	}

	writeJSONRecord("fanout-load", struct {
		Experiment string       `json:"experiment"`
		Scale      []scalePoint `json:"waiter_scale"`
		Modes      []modeResult `json:"modes"`
	}{"fanout-load", scale, modes})
}

// measureIBEDecrypt returns seconds per trial decryption with our pairing,
// on the scan configuration clients actually run — DecryptBatch over a
// mailbox chunk with a precomputed key ladder and shared batch inversions
// — the shape the IBEDecryptSeconds calibration extrapolates.
func measureIBEDecrypt() float64 {
	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	key := ibe.Extract(priv, "bob@example.org").Precompute()
	const batch = 16
	ctxts := make([][]byte, batch)
	for i := 1; i < batch; i++ {
		c, err := ibe.RandomCiphertext(rand.Reader, wire.FriendRequestSize)
		if err != nil {
			log.Fatal(err)
		}
		ctxts[i] = c
	}
	ctxts[0], err = ibe.Encrypt(rand.Reader, pub, "bob@example.org", make([]byte, wire.FriendRequestSize))
	if err != nil {
		log.Fatal(err)
	}
	ibe.DecryptBatch(key, ctxts) // warm the scratch pool
	start := time.Now()
	const reps = 10
	for i := 0; i < reps; i++ {
		ibe.DecryptBatch(key, ctxts)
	}
	return time.Since(start).Seconds() / (reps * batch)
}

func latencyTable(title string, latency func(p model.Params, c model.CostCalibration) float64, batch int) {
	header(title)
	mixCost := measureMixCost(batch)
	ibeCost := measureIBEDecrypt()
	fmt.Printf("calibration: mix %.2f µs/msg/server (measured, batch %d); IBE decrypt %.1f ms (measured)\n\n",
		mixCost*1e6, batch, ibeCost*1e3)

	ours := model.PaperCalibration()
	ours.MixSecondsPerMessage = mixCost
	ours.IBEDecryptSeconds = ibeCost
	paper := model.PaperCalibration()

	usersList := []float64{1e4, 1e5, 1e6, 1e7}
	for _, cal := range []struct {
		name string
		c    model.CostCalibration
	}{{"ours (Montgomery-limb pairing)", ours}, {"paper-calibrated (assembly costs)", paper}} {
		fmt.Printf("%s:\n%-10s %12s %12s %12s\n", cal.name, "users", "3 srv (s)", "5 srv (s)", "10 srv (s)")
		for _, u := range usersList {
			fmt.Printf("%-10.0g", u)
			for _, s := range []float64{3, 5, 10} {
				fmt.Printf(" %12.1f", latency(model.PaperParams(u, s), cal.c))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// fig8 prints Figure 8: add-friend round latency.
func fig8(batch int) {
	latencyTable("Figure 8: AddFriend latency vs online users",
		func(p model.Params, c model.CostCalibration) float64 { return p.AddFriendLatency(c) }, batch)
	fmt.Println("(paper measured: 152 s at 10M users, 3 servers)")
}

// fig9 prints Figure 9: dialing round latency.
func fig9(batch int) {
	latencyTable("Figure 9: Call latency vs online users",
		func(p model.Params, c model.CostCalibration) float64 { return p.DialingLatency(c, 1000, 10) }, batch)
	fmt.Println("(paper measured: 118 s at 10M users, 3 servers)")
}

// fig10 prints Figure 10: latency under Zipf-skewed recipient popularity,
// and the §8.4 mailbox-size table.
func fig10(int) {
	header("Figure 10: AddFriend latency under Zipf skew (1M users, 3 servers)")
	const users = 1000000
	requests := users / 20
	p := model.PaperParams(users, 3)
	mb := p.AddFriendMailboxModel()
	k := int(mb.NumMailboxes)
	cal := model.PaperCalibration()

	fmt.Printf("%-8s %10s %10s %10s %14s %14s %10s\n",
		"skew s", "min(s)", "median(s)", "max(s)", "minbox(MB)", "maxbox(MB)", "top10(%)")
	for _, s := range []float64{0, 0.5, 1, 1.5, 2} {
		z := model.NewZipf(users, s)
		counts, err := z.MailboxLoad(rand.Reader, requests, k)
		if err != nil {
			log.Fatal(err)
		}
		sort.Ints(counts)
		// Per-user latency varies with the size of THEIR mailbox:
		// download + scan dominate the per-user part.
		lat := func(realInBox int) float64 {
			tot := float64(realInBox) + mb.NoiseRequests
			bytes := tot * float64(wire.EncryptedFriendRequestSize)
			base := p.AddFriendLatency(cal)
			defaultBox := mb.RealRequests + mb.NoiseRequests
			delta := (tot-defaultBox)*cal.IBEDecryptSeconds/cal.ScanCores +
				(bytes-defaultBox*float64(wire.EncryptedFriendRequestSize))/cal.DownloadBytesPerSecond
			return base + delta
		}
		minBox := (float64(counts[0]) + mb.NoiseRequests) * float64(wire.EncryptedFriendRequestSize) / 1e6
		maxBox := (float64(counts[len(counts)-1]) + mb.NoiseRequests) * float64(wire.EncryptedFriendRequestSize) / 1e6
		fmt.Printf("%-8.1f %10.1f %10.1f %10.1f %14.2f %14.2f %10.1f\n",
			s, lat(counts[0]), lat(counts[len(counts)/2]), lat(counts[len(counts)-1]),
			minBox, maxBox, z.TopShare(10)*100)
	}
	fmt.Println("\n(paper: median flat; max grows, min shrinks; at s=2 largest mailbox")
	fmt.Println(" 14.95 MB / smallest 4.15 MB at 308 B/request; top-10 share 94.2%)")
}

// sizes prints the T5 message-size table.
func sizes() {
	header("Message sizes: this implementation vs paper")
	rows := []struct {
		name        string
		ours, paper int
	}{
		{"friend request plaintext", wire.FriendRequestSize, 244},
		{"IBE ciphertext overhead", ibe.Overhead, 64},
		{"encrypted friend request", wire.EncryptedFriendRequestSize, 308},
		{"dial token", keywheel.TokenSize, 32},
		{"add-friend onion (3 hops)", wire.OnionSize(wire.AddFriend, 3), -1},
		{"dialing onion (3 hops)", wire.OnionSize(wire.Dialing, 3), -1},
	}
	fmt.Printf("%-28s %10s %10s\n", "message", "ours (B)", "paper (B)")
	for _, r := range rows {
		paper := "-"
		if r.paper >= 0 {
			paper = fmt.Sprintf("%d", r.paper)
		}
		fmt.Printf("%-28s %10d %10s\n", r.name, r.ours, paper)
	}
	fmt.Println("\n(difference: uncompressed BN254 group elements — 128 B G2 points vs the")
	fmt.Println(" paper's 64 B compressed BN-256; counts and protocol structure identical)")
}

// extraction measures T3: combined key-extraction latency vs #PKGs.
func extraction() {
	header("Key extraction latency vs number of PKGs (paper T3: 4.9 ms @3, 5.2 ms @10)")
	for _, n := range []int{1, 3, 5, 10} {
		net, err := sim.NewNetwork(sim.Config{NumPKGs: n, NumMixers: 1})
		if err != nil {
			log.Fatal(err)
		}
		h := &sim.Handler{AcceptAll: true}
		client, err := net.NewClient("bench@example.org", h)
		if err != nil {
			log.Fatal(err)
		}
		const rounds = 5
		var total time.Duration
		for r := uint32(1); r <= rounds; r++ {
			if _, err := net.Coord.OpenAddFriendRound(r); err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if err := client.SubmitAddFriendRound(context.Background(), r); err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
		}
		fmt.Printf("%2d PKGs: %7.1f ms per round (extraction + attestation verify + submit)\n",
			n, float64(total.Milliseconds())/rounds)
	}
	fmt.Println("(ours includes BLS attestation verification with big.Int pairings;")
	fmt.Println(" the paper's 5 ms figure is network-latency dominated)")
}

// ibeSweep measures T8 (§8.6): per-operation IBE costs.
func ibeSweep() {
	header("IBE cost sweep (§8.6): per-operation costs of this substrate")
	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	msg := make([]byte, wire.FriendRequestSize)

	const reps = 3
	start := time.Now()
	var ctxt []byte
	for i := 0; i < reps; i++ {
		ctxt, err = ibe.Encrypt(rand.Reader, pub, "bob@x.org", msg)
		if err != nil {
			log.Fatal(err)
		}
	}
	encT := time.Since(start) / reps

	start = time.Now()
	var key *ibe.IdentityPrivateKey
	for i := 0; i < reps; i++ {
		key = ibe.Extract(priv, "bob@x.org")
	}
	extT := time.Since(start) / reps

	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, ok := ibe.Decrypt(key, ctxt); !ok {
			log.Fatal("decrypt failed")
		}
	}
	decT := time.Since(start) / reps

	fmt.Printf("encrypt: %8.1f ms   (pairing + G2 scalar mult + G1 scalar mult)\n", float64(encT.Microseconds())/1000)
	fmt.Printf("extract: %8.1f ms   (hash-to-G1 + G1 scalar mult)\n", float64(extT.Microseconds())/1000)
	fmt.Printf("decrypt: %8.1f ms   (one pairing; paper: 1.25 ms = 800/sec/core)\n", float64(decT.Microseconds())/1000)
	fmt.Printf("\nPKG extraction throughput: %.0f/sec/core (paper: 4310/sec on 36 cores)\n",
		1/extT.Seconds())
	fmt.Println("All Alpenhorn costs scale linearly in these three numbers (§8.6).")
}
