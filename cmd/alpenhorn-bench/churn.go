package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"
)

// churnBench measures the availability story of the self-healing
// scheduler over real TCP: a 3-position chain, each position sharded
// across 2 daemons with 1 hot spare standing by, runs consecutive
// dialing rounds while a seeded churn plan (internal/sim) kills a random
// non-announcer daemon at increasing rates. Zero operator action is ever
// taken — killed daemons are benched at plan time and replaced from the
// spare pool, and re-admitted automatically after they restart. For each
// kill rate the experiment reports the failed-round fraction, p50/p99
// round duration, and the mean rounds-to-recovery (kill to automatic
// re-admission). The -json record is uploaded per PR by CI, tracking the
// paper's availability claim (rounds keep closing as long as each
// position has a live quorum of machines) as the codebase evolves.
func churnBench(batchSize int) {
	header("Churn: self-healing rounds with hot spares under daemon kills (over TCP)")
	const (
		positions = 3
		shardsPer = 2
		numRounds = 10
	)
	counts := make([]int, positions)
	for i := range counts {
		counts[i] = shardsPer
	}
	fmt.Printf("dialing, batch %d, %d positions x %d shards + 1 spare each, %d rounds, GOMAXPROCS %d\n\n",
		batchSize, positions, shardsPer, numRounds, runtime.GOMAXPROCS(0))

	type modeResult struct {
		Name                 string  `json:"name"`
		KillEvery            int     `json:"kill_every_rounds"`
		Rounds               int     `json:"rounds"`
		Kills                int     `json:"kills"`
		Pauses               int     `json:"pauses"`
		FailedRounds         int     `json:"failed_rounds"`
		FailedFraction       float64 `json:"failed_round_fraction"`
		P50Ms                float64 `json:"round_p50_ms"`
		P99Ms                float64 `json:"round_p99_ms"`
		Readmissions         uint64  `json:"readmissions"`
		MeanRoundsToRecovery float64 `json:"mean_rounds_to_recovery"`
	}

	runMode := func(killEvery int) modeResult {
		nz := noise.Laplace{Mu: 2, B: 0}
		var closers []*rpc.Server
		defer func() {
			for _, s := range closers {
				s.Close()
			}
		}()
		servers := make([][]*mixnet.Server, positions)
		rpcSrvs := make([][]*rpc.Server, positions)
		addrs := make([][]string, positions)
		coord := &coordinator.Coordinator{
			TargetRequestsPerMailbox: 24000,
			ChainForward:             true,
			RoundDeadline:            30 * time.Second,
		}
		coord.Shards = make([][]coordinator.Mixer, positions)
		coord.Spares = make([][]coordinator.Mixer, positions)
		for i := 0; i < positions; i++ {
			for s := 0; s < shardsPer+1; s++ {
				cfg := mixnet.Config{
					Name: "m", Position: i, ChainLength: positions,
					AddFriendNoise: &nz, DialingNoise: &nz,
					Parallelism: parallelism,
				}
				if s == shardsPer {
					cfg.Spare = true // the position's hot spare: unpinned
				} else {
					cfg.ShardIndex, cfg.ShardCount = s, shardsPer
				}
				m, err := mixnet.New(cfg)
				if err != nil {
					log.Fatal(err)
				}
				srv := rpc.NewServer()
				rpc.RegisterMixer(srv, m)
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					log.Fatal(err)
				}
				closers = append(closers, srv)
				mc, err := rpc.DialMixer(addr)
				if err != nil {
					log.Fatal(err)
				}
				if cfg.Spare {
					coord.Spares[i] = append(coord.Spares[i], mc)
					continue
				}
				if s == 0 {
					coord.Mixers = append(coord.Mixers, mc)
				} else {
					coord.Shards[i] = append(coord.Shards[i], mc)
				}
				servers[i] = append(servers[i], m)
				rpcSrvs[i] = append(rpcSrvs[i], srv)
				addrs[i] = append(addrs[i], addr)
			}
		}
		store := cdn.NewStore(2)
		cdnSrv := rpc.NewServer()
		rpc.RegisterCDN(cdnSrv, store)
		cdnAddr, err := cdnSrv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		closers = append(closers, cdnSrv)
		e := entry.New()
		coord.Entry = e
		coord.CDN = store
		coord.CDNAddr = cdnAddr
		coord.SetExpectedVolume(wire.Dialing, batchSize)

		var plan *sim.ChurnPlan
		if killEvery > 0 {
			plan = sim.NewChurnPlan(11, numRounds, killEvery, counts)
		}
		res := modeResult{KillEvery: killEvery, Rounds: numRounds}
		if killEvery == 0 {
			res.Name = "no churn (baseline)"
		} else {
			res.Name = fmt.Sprintf("kill a random shard every %d round(s)", killEvery)
			res.Kills, res.Pauses = plan.Kills, plan.Pauses
		}

		restart := func(pos, shard int) {
			srv := rpc.NewServer()
			rpc.RegisterMixer(srv, servers[pos][shard])
			if _, err := srv.Listen(addrs[pos][shard]); err != nil {
				log.Fatalf("restarting daemon %d/%d: %v", pos, shard, err)
			}
			closers = append(closers, srv)
			rpcSrvs[pos][shard] = srv
		}

		benchedAt := make(map[string]int)
		var recoveries []int
		var okDurations []time.Duration
		for r := 1; r <= numRounds; r++ {
			if plan != nil {
				for _, ev := range plan.EventsBefore(r) {
					switch ev.Action {
					case sim.ChurnKill:
						rpcSrvs[ev.Position][ev.Shard].Close()
					case sim.ChurnRestart:
						restart(ev.Position, ev.Shard)
					case sim.ChurnPause:
						rpcSrvs[ev.Position][ev.Shard].Close()
						restart(ev.Position, ev.Shard)
					}
				}
			}
			round := uint32(r)
			settings, err := coord.OpenDialingRound(round)
			if err != nil {
				res.FailedRounds++
				continue
			}
			batch, err := sim.GenerateBatch(nil, settings, sim.Workload{
				Real: batchSize / 20, Cover: batchSize - batchSize/20,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, onion := range batch {
				if err := e.Submit(wire.Dialing, round, onion); err != nil {
					log.Fatal(err)
				}
			}
			start := time.Now()
			if _, err := coord.CloseRound(wire.Dialing, round); err != nil {
				res.FailedRounds++
			} else {
				okDurations = append(okDurations, time.Since(start))
			}
			// Track bench/recovery transitions: a daemon leaving the bench
			// recovered in (now - benched-at) rounds, with no operator in
			// the loop.
			for _, d := range coord.Scoreboard().Daemons {
				if d.Spare {
					continue
				}
				was, benched := benchedAt[d.Addr]
				if d.Benched && !benched {
					benchedAt[d.Addr] = r
				} else if !d.Benched && benched {
					recoveries = append(recoveries, r-was)
					delete(benchedAt, d.Addr)
				}
			}
		}

		res.FailedFraction = float64(res.FailedRounds) / float64(numRounds)
		sort.Slice(okDurations, func(i, j int) bool { return okDurations[i] < okDurations[j] })
		pct := func(p float64) float64 {
			if len(okDurations) == 0 {
				return 0
			}
			idx := int(p * float64(len(okDurations)-1))
			return float64(okDurations[idx]) / float64(time.Millisecond)
		}
		res.P50Ms, res.P99Ms = pct(0.50), pct(0.99)
		for _, d := range coord.Scoreboard().Daemons {
			res.Readmissions += d.Readmissions
		}
		if len(recoveries) > 0 {
			sum := 0
			for _, n := range recoveries {
				sum += n
			}
			res.MeanRoundsToRecovery = float64(sum) / float64(len(recoveries))
		}
		return res
	}

	var results []modeResult
	for _, killEvery := range []int{0, 2, 1} {
		r := runMode(killEvery)
		fmt.Printf("%-42s %2d kills %2d pauses   %d/%d rounds failed   p50 %7.1f ms  p99 %7.1f ms   %d re-admissions  %.1f rounds to recovery\n",
			r.Name, r.Kills, r.Pauses, r.FailedRounds, r.Rounds, r.P50Ms, r.P99Ms, r.Readmissions, r.MeanRoundsToRecovery)
		results = append(results, r)
	}
	fmt.Println("\n(a killed daemon is benched by a failed plan-time probe and its slot is")
	fmt.Println(" covered by the position's hot spare; after restarting it probes healthy")
	fmt.Println(" and is re-admitted once the bench cooldown passes — zero operator action)")

	writeJSONRecord("churn", struct {
		Experiment string       `json:"experiment"`
		Batch      int          `json:"batch"`
		GoMaxProcs int          `json:"gomaxprocs"`
		Modes      []modeResult `json:"modes"`
	}{"churn", batchSize, runtime.GOMAXPROCS(0), results})
}
