package main

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"alpenhorn/internal/bn254"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/wire"
)

// ibeBenchRecord is the -json record of the ibe-bench experiment. The
// *_speedup fields are machine-independent ratios (both sides measured
// back-to-back on the same box), which is what the committed BENCH_ibe.json
// baseline pins: CI compares a fresh run's ratios against the baseline's
// and fails on >30% regression, without being fooled by runner speed.
type ibeBenchRecord struct {
	Experiment          string  `json:"experiment"`
	DecryptsPerSec      float64 `json:"decrypts_per_sec"`
	BatchDecryptsPerSec float64 `json:"batch_decrypts_per_sec"`
	BatchScanSpeedup    float64 `json:"batch_scan_speedup"`
	// The v2 (optimal-ate) tier rows: batched v2 scan rate, its ratio
	// over the batched v1 scan (the acceptance target is ≥1.8x), and the
	// scalar v2 decrypt rate for reference.
	DecryptsV2PerSec      float64 `json:"decrypts_v2_per_sec"`
	BatchDecryptsV2PerSec float64 `json:"batch_decrypts_v2_per_sec"`
	AteScanSpeedup        float64 `json:"ate_scan_speedup"`
	ExtractionsPerSec     float64 `json:"extractions_per_sec"`
	G1CombPerSec          float64 `json:"g1_comb_mults_per_sec"`
	G1LadderPerSec        float64 `json:"g1_ladder_mults_per_sec"`
	G1CombSpeedup         float64 `json:"g1_comb_speedup"`
	G2CombPerSec          float64 `json:"g2_comb_mults_per_sec"`
	G2LadderPerSec        float64 `json:"g2_ladder_mults_per_sec"`
	G2CombSpeedup         float64 `json:"g2_comb_speedup"`
	Scan24kProjSec        float64 `json:"sec_per_24k_mailbox_scan_4core_proj"`
	Scan24kBatchProjSec   float64 `json:"sec_per_24k_mailbox_scan_batched_4core_proj"`
	Scan24kMeasSec        float64 `json:"sec_per_24k_mailbox_scan_measured"`
	ScanWorkers           int     `json:"scan_workers"`
}

// scanChunk mirrors core.Client.ScanAddFriendRound's DecryptBatch chunk.
const scanChunk = 32

// ibeBench is the -exp ibe-bench experiment: the paper's T1/T4 crypto
// throughput claims on this substrate's Montgomery-limb pairing. It
// reports single-core decrypts/sec for the per-ciphertext path (paper:
// 800/sec/core on BN-256 assembly) and for the batched scan pipeline
// that clients actually run, fixed-base comb vs generic-ladder
// ScalarBaseMult rates for both groups, PKG extractions/sec (paper:
// 4310/sec on 36 cores), and the time to trial-decrypt a 24,000-request
// add-friend mailbox (paper: 8 s on 4 cores) — projected unbatched,
// projected batched, and measured on a real chunked worker-pool scan.
// With -json the record is uploaded by CI as the BENCH_ibe artifact and
// diffed against the committed baseline (see -baseline).
func ibeBench() {
	header("IBE crypto throughput (T1/T4): comb tables + batched scan pipeline")

	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	msg := make([]byte, wire.FriendRequestSize)
	ctxt, err := ibe.Encrypt(rand.Reader, pub, "bob@example.org", msg)
	if err != nil {
		log.Fatal(err)
	}

	// Single-core trial decryption, scan configuration (precomputed
	// Miller ladder, as core.Client.ScanAddFriendRound uses).
	key := ibe.Extract(priv, "bob@example.org").Precompute()
	decRate := rate(func() {
		if _, ok := ibe.Decrypt(key, ctxt); !ok {
			log.Fatal("decrypt failed")
		}
	})

	// Mailbox of noise with one planted request, for the batched paths.
	const mailboxSize = 96
	mailbox := make([]byte, 0, mailboxSize*wire.EncryptedFriendRequestSize)
	noise, err := ibe.RandomCiphertexts(rand.Reader, wire.FriendRequestSize, mailboxSize-1)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range noise {
		mailbox = append(mailbox, c...)
	}
	mailbox = append(mailbox, ctxt...)
	chunks := make([][][]byte, 0, (mailboxSize+scanChunk-1)/scanChunk)
	for lo := 0; lo < mailboxSize; lo += scanChunk {
		hi := lo + scanChunk
		if hi > mailboxSize {
			hi = mailboxSize
		}
		ctxts := make([][]byte, 0, hi-lo)
		for i := lo; i < hi; i++ {
			off := i * wire.EncryptedFriendRequestSize
			ctxts = append(ctxts, mailbox[off:off+wire.EncryptedFriendRequestSize])
		}
		chunks = append(chunks, ctxts)
	}

	// Single-core batched scan rate (ciphertexts/sec through DecryptBatch
	// in client-sized chunks).
	batchScanRate := func(scan func(ctxts [][]byte)) float64 {
		chunkIdx := 0
		batchCtxts := 0
		batchStart := time.Now()
		for time.Since(batchStart) < 250*time.Millisecond {
			ctxts := chunks[chunkIdx%len(chunks)]
			chunkIdx++
			scan(ctxts)
			batchCtxts += len(ctxts)
		}
		return float64(batchCtxts) / time.Since(batchStart).Seconds()
	}
	batchRate := batchScanRate(func(ctxts [][]byte) { ibe.DecryptBatch(key, ctxts) })

	// The v2 (optimal-ate) tier on the same mailbox: noise blobs are
	// tier-independent random ciphertexts, and the planted v1 request
	// simply fails v2 authentication like any foreign message — the scan
	// work per ciphertext is identical, so the rates compare directly.
	key.PrecomputeV2()
	ctxtV2, err := ibe.EncryptV2(rand.Reader, pub, "bob@example.org", msg)
	if err != nil {
		log.Fatal(err)
	}
	decV2Rate := rate(func() {
		if _, ok := ibe.DecryptV2(key, ctxtV2); !ok {
			log.Fatal("v2 decrypt failed")
		}
	})
	batchV2Rate := batchScanRate(func(ctxts [][]byte) { ibe.DecryptBatchV2(key, ctxts) })

	// Server-side extraction throughput (hash-to-G1 + G1 scalar mult).
	i := 0
	extRate := rate(func() {
		ibe.Extract(priv, fmt.Sprintf("user%d@example.org", i))
		i++
	})

	// Fixed-base comb tables vs the generic double-and-add ladder.
	k, err := bn254.RandomScalar(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	var p1 bn254.G1
	var p2 bn254.G2
	g1CombRate := rate(func() { p1.ScalarBaseMult(k) })
	g1LadderRate := rate(func() { p1.ScalarMult(bn254.G1Generator(), k) })
	g2CombRate := rate(func() { p2.ScalarBaseMult(k) })
	g2LadderRate := rate(func() { p2.ScalarMult(bn254.G2Generator(), k) })

	// Real parallel mailbox scan on the chunked worker pool (what
	// ScanAddFriendRound runs), measured end to end.
	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int, len(chunks))
	for j := range chunks {
		next <- j
	}
	close(next)
	hitsPerChunk := make([]int, len(chunks))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				_, oks := ibe.DecryptBatch(key, chunks[j])
				hitsPerChunk[j] = countTrue(oks)
			}
		}()
	}
	wg.Wait()
	parallelScan := time.Since(start).Seconds()
	hits := 0
	for _, h := range hitsPerChunk {
		hits += h
	}
	if hits != 1 {
		log.Fatalf("ibe-bench: scan found %d of 1 planted requests", hits)
	}

	rec := ibeBenchRecord{
		Experiment:            "ibe-bench",
		DecryptsPerSec:        decRate,
		BatchDecryptsPerSec:   batchRate,
		BatchScanSpeedup:      batchRate / decRate,
		DecryptsV2PerSec:      decV2Rate,
		BatchDecryptsV2PerSec: batchV2Rate,
		AteScanSpeedup:        batchV2Rate / batchRate,
		ExtractionsPerSec:     extRate,
		G1CombPerSec:          g1CombRate,
		G1LadderPerSec:        g1LadderRate,
		G1CombSpeedup:         g1CombRate / g1LadderRate,
		G2CombPerSec:          g2CombRate,
		G2LadderPerSec:        g2LadderRate,
		G2CombSpeedup:         g2CombRate / g2LadderRate,
		Scan24kProjSec:        24000 / decRate / 4,
		Scan24kBatchProjSec:   24000 / batchRate / 4,
		Scan24kMeasSec:        parallelScan / mailboxSize * 24000,
		ScanWorkers:           workers,
	}

	fmt.Printf("decrypts/sec (1 core, per-ciphertext): %8.1f   (paper: 800/sec/core)\n", rec.DecryptsPerSec)
	fmt.Printf("decrypts/sec (1 core, batched scan):   %8.1f   (%.2fx)\n", rec.BatchDecryptsPerSec, rec.BatchScanSpeedup)
	fmt.Printf("v2 decrypts/sec (1 core, scalar ate):  %8.1f\n", rec.DecryptsV2PerSec)
	fmt.Printf("v2 decrypts/sec (1 core, batched ate): %8.1f   (%.2fx over batched v1)\n", rec.BatchDecryptsV2PerSec, rec.AteScanSpeedup)
	fmt.Printf("extractions/sec (1 core):              %8.1f   (paper: 4310/sec on 36 cores)\n", rec.ExtractionsPerSec)
	fmt.Printf("G1 ScalarBaseMult/sec: comb %9.1f vs ladder %9.1f  (%.1fx)\n", rec.G1CombPerSec, rec.G1LadderPerSec, rec.G1CombSpeedup)
	fmt.Printf("G2 ScalarBaseMult/sec: comb %9.1f vs ladder %9.1f  (%.1fx)\n", rec.G2CombPerSec, rec.G2LadderPerSec, rec.G2CombSpeedup)
	fmt.Printf("24k-mailbox scan, 4-core projection: unbatched %6.1f s, batched %6.1f s  (paper: 8 s)\n",
		rec.Scan24kProjSec, rec.Scan24kBatchProjSec)
	fmt.Printf("24k-mailbox scan, measured on %d workers: %6.1f s\n", workers, rec.Scan24kMeasSec)

	checkIBEBaseline(rec)
	writeJSONRecord("ibe-bench", rec)
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// checkIBEBaseline compares a fresh run's machine-independent speedup
// ratios against the committed baseline record (-baseline flag) and exits
// nonzero if any ratio regressed by more than 30%. Absolute rates are
// reported but not gated — they track the runner, not the code.
func checkIBEBaseline(fresh ibeBenchRecord) {
	if baselinePath == "" {
		return
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("ibe-bench: reading baseline: %v", err)
	}
	var base ibeBenchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("ibe-bench: parsing baseline: %v", err)
	}
	fmt.Printf("\nbaseline check against %s (fail below 70%% of baseline ratio):\n", baselinePath)
	failed := false
	for _, c := range []struct {
		name        string
		fresh, base float64
	}{
		{"g1_comb_speedup", fresh.G1CombSpeedup, base.G1CombSpeedup},
		{"g2_comb_speedup", fresh.G2CombSpeedup, base.G2CombSpeedup},
		{"batch_scan_speedup", fresh.BatchScanSpeedup, base.BatchScanSpeedup},
		{"ate_scan_speedup", fresh.AteScanSpeedup, base.AteScanSpeedup},
	} {
		if c.base <= 0 {
			fmt.Printf("  %-20s baseline has no value, skipped\n", c.name)
			continue
		}
		status := "ok"
		if c.fresh < 0.7*c.base {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-20s fresh %5.2fx vs baseline %5.2fx   %s\n", c.name, c.fresh, c.base, status)
	}
	if failed {
		log.Fatal("ibe-bench: speedup ratio regressed >30% against the committed baseline")
	}
}

// rate runs f repeatedly for ~1/4 second and returns iterations/sec.
func rate(f func()) float64 {
	// Warm up once (first call may pay one-time setup).
	f()
	n := 0
	start := time.Now()
	for time.Since(start) < 250*time.Millisecond {
		f()
		n++
	}
	return float64(n) / time.Since(start).Seconds()
}
