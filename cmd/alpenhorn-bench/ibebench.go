package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/wire"
)

// ibeBench is the -exp ibe-bench experiment: the paper's T1/T4 crypto
// throughput claims on this substrate's Montgomery-limb pairing. It
// reports single-core decrypts/sec (paper: 800/sec/core on BN-256
// assembly), PKG extractions/sec (paper: 4310/sec on 36 cores), and the
// time to trial-decrypt a 24,000-request add-friend mailbox (paper: 8 s
// on 4 cores), both projected from the single-core rate and measured on
// a real GOMAXPROCS worker-pool scan. With -json the record is uploaded
// by CI as the BENCH_ibe artifact, so the pairing hot path's trajectory
// is archived per change.
func ibeBench() {
	header("IBE crypto throughput (T1/T4): Montgomery-limb pairing")

	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	msg := make([]byte, wire.FriendRequestSize)
	ctxt, err := ibe.Encrypt(rand.Reader, pub, "bob@example.org", msg)
	if err != nil {
		log.Fatal(err)
	}

	// Single-core trial decryption, scan configuration (precomputed
	// Miller ladder, as core.Client.ScanAddFriendRound uses).
	key := ibe.Extract(priv, "bob@example.org").Precompute()
	decRate := rate(func() {
		if _, ok := ibe.Decrypt(key, ctxt); !ok {
			log.Fatal("decrypt failed")
		}
	})

	// Server-side extraction throughput (hash-to-G1 + G1 scalar mult).
	i := 0
	extRate := rate(func() {
		ibe.Extract(priv, fmt.Sprintf("user%d@example.org", i))
		i++
	})

	// Real parallel mailbox scan on a worker pool: a small mailbox
	// measured end to end, scaled to the paper's 24,000 requests.
	const mailboxSize = 64
	mailbox := make([]byte, 0, mailboxSize*wire.EncryptedFriendRequestSize)
	for j := 0; j < mailboxSize-1; j++ {
		c, err := ibe.RandomCiphertext(rand.Reader, wire.FriendRequestSize)
		if err != nil {
			log.Fatal(err)
		}
		mailbox = append(mailbox, c...)
	}
	mailbox = append(mailbox, ctxt...)

	workers := runtime.GOMAXPROCS(0)
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int, mailboxSize)
	for j := 0; j < mailboxSize; j++ {
		next <- j
	}
	close(next)
	found := make([]bool, mailboxSize)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				off := j * wire.EncryptedFriendRequestSize
				if _, ok := ibe.Decrypt(key, mailbox[off:off+wire.EncryptedFriendRequestSize]); ok {
					found[j] = true
				}
			}
		}()
	}
	wg.Wait()
	parallelScan := time.Since(start).Seconds()
	hits := 0
	for _, f := range found {
		if f {
			hits++
		}
	}
	if hits != 1 {
		log.Fatalf("ibe-bench: scan found %d of 1 planted requests", hits)
	}

	scan24kProjected := 24000 / decRate / 4 // single-core rate on the paper's 4 cores
	scan24kMeasured := parallelScan / mailboxSize * 24000

	fmt.Printf("decrypts/sec (1 core):     %8.1f   (paper: 800/sec/core)\n", decRate)
	fmt.Printf("extractions/sec (1 core):  %8.1f   (paper: 4310/sec on 36 cores)\n", extRate)
	fmt.Printf("24k-mailbox scan, 4-core projection: %6.1f s  (paper: 8 s)\n", scan24kProjected)
	fmt.Printf("24k-mailbox scan, measured on %d workers: %6.1f s\n", workers, scan24kMeasured)

	writeJSONRecord("ibe-bench", struct {
		Experiment        string  `json:"experiment"`
		DecryptsPerSec    float64 `json:"decrypts_per_sec"`
		ExtractionsPerSec float64 `json:"extractions_per_sec"`
		Scan24kProjSec    float64 `json:"sec_per_24k_mailbox_scan_4core_proj"`
		Scan24kMeasSec    float64 `json:"sec_per_24k_mailbox_scan_measured"`
		ScanWorkers       int     `json:"scan_workers"`
	}{"ibe-bench", decRate, extRate, scan24kProjected, scan24kMeasured, workers})
}

// rate runs f repeatedly for ~1/4 second and returns iterations/sec.
func rate(f func()) float64 {
	// Warm up once (first call may pay one-time setup).
	f()
	n := 0
	start := time.Now()
	for time.Since(start) < 250*time.Millisecond {
		f()
		n++
	}
	return float64(n) / time.Since(start).Seconds()
}
