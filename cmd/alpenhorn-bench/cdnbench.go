package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/wire"
)

// cdnLoad measures the CDN tier the paper's §7 offload claim leans on:
// mailbox delivery is public content, so the last mix server can hand
// sealed rounds to ordinary storage/CDN machinery instead of serving
// clients itself. The experiment quantifies what that machinery costs in
// this codebase: sealing throughput for the memory and disk backends,
// client fetch latency (p50/p99) over TCP against each, and the lag for a
// sealed round to replicate to a peer node — the window during which a
// single-node failure could make a fresh round briefly unavailable.
func cdnLoad() {
	const (
		numMailboxes = 512
		mailboxBytes = 2048
		sealRounds   = 24
		fetches      = 2000
	)
	boxes := make(map[uint32][]byte, numMailboxes)
	for i := uint32(0); i < numMailboxes; i++ {
		data := make([]byte, mailboxBytes)
		for j := range data {
			data[j] = byte(i) + byte(j)
		}
		boxes[i] = data
	}
	roundBytes := numMailboxes * mailboxBytes

	sealThroughput := func(mk func() *cdn.Store) float64 {
		store := mk()
		defer store.Close()
		start := time.Now()
		for r := uint32(1); r <= sealRounds; r++ {
			if err := store.Publish(wire.Dialing, r, boxes); err != nil {
				log.Fatal(err)
			}
		}
		return float64(roundBytes) * sealRounds / time.Since(start).Seconds() / 1e6
	}
	memSeal := sealThroughput(func() *cdn.Store { return cdn.NewStore(0) })
	diskDir, err := os.MkdirTemp("", "cdnbench-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(diskDir)
	diskSeal := sealThroughput(func() *cdn.Store {
		s, err := cdn.OpenDiskStore(diskDir, 0)
		if err != nil {
			log.Fatal(err)
		}
		return s
	})

	// Fetch latency over TCP against each backend.
	fetchLatency := func(store *cdn.Store) (p50, p99 time.Duration) {
		srv := rpc.NewServer()
		rpc.RegisterCDNFrontend(srv, store)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		c := rpc.DialCDN(addr)
		defer c.Close()
		ctx := context.Background()
		lat := make([]time.Duration, 0, fetches)
		for i := 0; i < fetches; i++ {
			mb := uint32(i) % numMailboxes
			start := time.Now()
			if _, err := c.Fetch(ctx, wire.Dialing, 1, mb); err != nil {
				log.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], lat[len(lat)*99/100]
	}
	memStore := cdn.NewStore(0)
	if err := memStore.Publish(wire.Dialing, 1, boxes); err != nil {
		log.Fatal(err)
	}
	memP50, memP99 := fetchLatency(memStore)
	diskStore, err := cdn.OpenDiskStore(diskDir, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer diskStore.Close()
	diskP50, diskP99 := fetchLatency(diskStore)

	// Replication lag: publish to node A over TCP, time until the sealed
	// round is fetchable on peer B.
	startNode := func() (*cdn.Store, *rpc.CDNDaemon, string, func()) {
		store := cdn.NewStore(0)
		srv := rpc.NewServer()
		d := rpc.RegisterCDN(srv, store)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		return store, d, addr, srv.Close
	}
	_, da, addrA, closeA := startNode()
	sb, _, addrB, closeB := startNode()
	defer closeA()
	defer closeB()
	da.SetPeers(addrB)
	defer da.Close()
	pub := rpc.Dial(addrA)
	defer pub.Close()
	var lags []time.Duration
	for r := uint32(1); r <= 8; r++ {
		start := time.Now()
		if err := rpc.PublishMailboxes(pub, wire.Dialing, r, boxes); err != nil {
			log.Fatal(err)
		}
		for !sb.Published(wire.Dialing, r) {
			time.Sleep(200 * time.Microsecond)
		}
		lags = append(lags, time.Since(start))
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	replLag := lags[len(lags)/2]

	fmt.Printf("CDN load (%d mailboxes × %d B per round)\n", numMailboxes, mailboxBytes)
	fmt.Printf("  seal throughput    memory %8.1f MB/s   disk %8.1f MB/s\n", memSeal, diskSeal)
	fmt.Printf("  fetch latency TCP  memory p50 %v p99 %v\n", memP50, memP99)
	fmt.Printf("                     disk   p50 %v p99 %v\n", diskP50, diskP99)
	fmt.Printf("  replication lag    publish→peer sealed (median) %v\n", replLag)

	writeJSONRecord("cdn-load", struct {
		NumMailboxes     int     `json:"num_mailboxes"`
		MailboxBytes     int     `json:"mailbox_bytes"`
		MemSealMBps      float64 `json:"mem_seal_mbps"`
		DiskSealMBps     float64 `json:"disk_seal_mbps"`
		MemFetchP50Us    int64   `json:"mem_fetch_p50_us"`
		MemFetchP99Us    int64   `json:"mem_fetch_p99_us"`
		DiskFetchP50Us   int64   `json:"disk_fetch_p50_us"`
		DiskFetchP99Us   int64   `json:"disk_fetch_p99_us"`
		ReplicationLagUs int64   `json:"replication_lag_us"`
	}{
		numMailboxes, mailboxBytes, memSeal, diskSeal,
		memP50.Microseconds(), memP99.Microseconds(),
		diskP50.Microseconds(), diskP99.Microseconds(),
		replLag.Microseconds(),
	})
}
