// Command alpenhorn-entry runs the client-facing frontend of an Alpenhorn
// deployment: the (untrusted) entry server, the mailbox CDN, and the round
// coordinator that drives the PKG and mixer daemons.
//
//	alpenhorn-entry -addr :7000 \
//	    -pkgs  localhost:7001,localhost:7002,localhost:7003 \
//	    -mixers localhost:7101,localhost:7102,localhost:7103 \
//	    -addfriend-interval 30s -dialing-interval 10s
//
// -mixers is a flat list: daemons are grouped into chain positions (and,
// when several daemons advertise the same position with -shard i/N, into
// that position's shard group) by what each daemon reports. Daemons
// started with -spare join their position's hot-spare pool instead: the
// coordinator's scheduler probes every member at round-plan time,
// benches the ones that fail (or breach -latency-slo), drafts spares
// into their slots, and re-admits them automatically once they recover —
// rounds keep closing with zero operator action. Sharded positions
// require the chain-forward data plane (-chain-forward, the default).
// The scheduler's per-daemon scoreboard and the round-health ring are
// served read-only over the coordinator.status RPC on the client port.
//
// Clients connect here, fetch the deployment directory (server addresses
// and pinned keys), and then poll round status to participate.
//
// # Multi-frontend topology
//
// The entry tier scales out horizontally: extra copies of this binary run
// as PURE frontends (-frontend-only) against the coordinator instance, and
// the coordinator replays every round announcement to each of them in the
// same order, so all frontends serve one shared event-cursor namespace and
// clients can fail over between them mid-round. Each frontend admits its
// own sub-batch of onions and deals it into the first mix position
// directly (counted NumUpstream fan-in). A 2-frontend deployment:
//
//	# frontend B: pure frontend, no coordinator
//	alpenhorn-entry -frontend-only -addr feB:7000 \
//	    -replica-addr feB:7020 -coordinator-addr feA:7000
//
//	# frontend A: coordinator + first frontend
//	alpenhorn-entry -addr feA:7000 -pkgs ... -mixers ... \
//	    -frontends feB:7000=feB:7020
//
// Clients learn the full frontend list from the directory served by ANY
// frontend (frontend_addrs) and spread their connections across it.
// -replica-addr is a server-plane surface like -cdn-addr: it accepts the
// coordinator's announcements and batch collection, so it must not be
// exposed to clients.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/rpc"
	"alpenhorn/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7000", "TCP address to listen on")
	pkgAddrs := flag.String("pkgs", "", "comma-separated PKG daemon addresses")
	mixerAddrs := flag.String("mixers", "", "comma-separated mixer daemon addresses (chain order)")
	afInterval := flag.Duration("addfriend-interval", 30*time.Second, "add-friend round interval")
	dlInterval := flag.Duration("dialing-interval", 10*time.Second, "dialing round interval")
	submitWindow := flag.Duration("submit-window", 5*time.Second, "time clients have to submit before a round closes")
	chainForward := flag.Bool("chain-forward", true, "mixers forward batches to each other; the coordinator moves control messages only (falls back to relaying when a daemon lacks support)")
	cdnAddr := flag.String("cdn-addr", ":7010", "server-plane listen address for cdn.publish (kept OFF the client-facing -addr: the transport is unauthenticated)")
	cdnPublicAddr := flag.String("cdn-public-addr", "", "address mixers dial to reach cdn.publish (default: -cdn-addr; set host:port for multi-machine deployments)")
	frontendOnly := flag.Bool("frontend-only", false, "run as a pure entry frontend joined to an existing deployment (-coordinator-addr); no PKGs, mixers, CDN, or round timers here")
	coordinatorAddr := flag.String("coordinator-addr", "", "client-facing address of the coordinator frontend to join (with -frontend-only)")
	replicaAddr := flag.String("replica-addr", ":7020", "server-plane listen address for entry.replicate (with -frontend-only; kept OFF the client-facing -addr: the transport is unauthenticated)")
	frontendSpecs := flag.String("frontends", "", "comma-separated extra frontends joining this coordinator, each clientAddr=replicaAddr; announcements replay to all of them and each feeds its own sub-batch")
	cdnNodes := flag.String("cdns", "", "comma-separated client-facing addresses of dedicated alpenhorn-cdn nodes, published in the directory (cdn_addrs) so clients fetch mailboxes from the CDN tier with failover; point -cdn-public-addr at one node's -ingest so rounds publish there (this binary's embedded store is the degenerate single-node case)")
	roundDeadline := flag.Duration("round-deadline", 2*time.Minute, "per-round data-plane deadline pushed to every mixer (0 = none); a stalled round aborts instead of wedging the chain")
	latencySLO := flag.Duration("latency-slo", 0, "per-daemon round-duration SLO (0 = none); a daemon breaching it is benched and replaced by a hot spare until it recovers")
	adaptiveChunk := flag.Bool("adaptive-chunk", false, "adapt the pipeline chunk size to observed round outcomes within a bounded window (makes batch order depend on history; leave off when replaying fixed-seed experiments)")
	pinLead := flag.Bool("pin-lead", false, "pin the shard-group merge/build-lead role to shard 0 instead of rotating it round-robin per round")
	healthRing := flag.Int("health-ring", 0, "rounds of health history kept for coordinator.status (0 = default)")
	flag.Parse()

	if *frontendOnly {
		if *coordinatorAddr == "" {
			log.Fatal("-frontend-only needs -coordinator-addr")
		}
		runFrontendOnly(*addr, *replicaAddr, *coordinatorAddr)
		return
	}

	if *pkgAddrs == "" || *mixerAddrs == "" {
		log.Fatal("need -pkgs and -mixers")
	}

	// Connect to the backend daemons and collect their pinned keys for
	// the client directory.
	dir := rpc.Directory{PKGAddrs: strings.Split(*pkgAddrs, ",")}
	var pkgs []coordinator.PKG
	for _, a := range dir.PKGAddrs {
		pc := rpc.DialPKG(a)
		info, err := pc.Info()
		if err != nil {
			log.Fatalf("connecting to PKG %s: %v", a, err)
		}
		log.Printf("PKG %s (%s) key %x…", a, info.Name, info.SigningKey[:8])
		dir.PKGKeys = append(dir.PKGKeys, info.SigningKey)
		dir.PKGBLSKeys = append(dir.PKGBLSKeys, info.BLSKey)
		pkgs = append(pkgs, pc)
	}
	// Group mixers into per-position shard sets by what each daemon
	// advertises (-position and -shard i/N). Clients only ever see one
	// key per POSITION — a shard group is one logical mixer, so the
	// directory and round settings are identical to an unsharded chain.
	byPosition := make(map[int]map[int]*rpc.MixerClient)
	sparesByPosition := make(map[int][]coordinator.Mixer)
	for _, a := range strings.Split(*mixerAddrs, ",") {
		mc, err := rpc.DialMixer(a)
		if err != nil {
			log.Fatalf("connecting to mixer %s: %v", a, err)
		}
		info := mc.Info()
		if info.Spare {
			// Hot spare: no fixed slot. The scheduler drafts it into a
			// benched member's slot at its position when a round needs it.
			log.Printf("mixer %s (%s, position %d) standing by as a hot spare", a, info.Name, info.Position)
			sparesByPosition[info.Position] = append(sparesByPosition[info.Position], mc)
			continue
		}
		count := info.ShardCount
		if count == 0 {
			count = 1
		}
		log.Printf("mixer %s (%s, position %d, shard %d/%d) key %x…", a, info.Name, info.Position, info.ShardIndex, count, info.SigningKey[:8])
		group := byPosition[info.Position]
		if group == nil {
			group = make(map[int]*rpc.MixerClient)
			byPosition[info.Position] = group
		}
		if _, dup := group[info.ShardIndex]; dup {
			log.Fatalf("two mixers advertise position %d shard %d", info.Position, info.ShardIndex)
		}
		group[info.ShardIndex] = mc
	}
	var mixers []coordinator.Mixer
	shards := make([][]coordinator.Mixer, len(byPosition))
	for i := 0; i < len(byPosition); i++ {
		group, ok := byPosition[i]
		if !ok {
			log.Fatalf("no mixer advertises position %d (positions must be contiguous from 0)", i)
		}
		for s := 0; s < len(group); s++ {
			mc, ok := group[s]
			if !ok {
				log.Fatalf("position %d: no mixer advertises shard %d (shard indices must be contiguous from 0)", i, s)
			}
			if want := mc.Info().ShardCount; want != 0 && want != len(group) {
				log.Fatalf("position %d: shard %d expects a group of %d, found %d", i, s, want, len(group))
			}
			if s == 0 {
				// Shard 0 is the position's announcer: it signs the round
				// announcements, so its key is the one clients pin. The
				// merge/build-lead role rotates separately each round.
				dir.MixerKeys = append(dir.MixerKeys, mc.Info().SigningKey)
				mixers = append(mixers, mc)
			} else {
				shards[i] = append(shards[i], mc)
			}
		}
		if len(group) > 1 {
			log.Printf("position %d is sharded across %d daemons (announcer %s)", i, len(group), group[0].Addr())
		}
	}
	dir.NumMixers = len(mixers)
	spares := make([][]coordinator.Mixer, len(mixers))
	for pos, pool := range sparesByPosition {
		if pos < 0 || pos >= len(mixers) {
			log.Fatalf("spare mixer advertises position %d, but the chain has positions 0..%d", pos, len(mixers)-1)
		}
		spares[pos] = pool
	}

	e := entry.New()
	store := cdn.NewStore(64)
	coord := &coordinator.Coordinator{
		Entry:                    e,
		Mixers:                   mixers,
		Shards:                   shards,
		Spares:                   spares,
		PKGs:                     pkgs,
		CDN:                      store,
		TargetRequestsPerMailbox: 24000,
		RoundDeadline:            *roundDeadline,
		LatencySLO:               *latencySLO,
		AdaptiveChunk:            *adaptiveChunk,
		PinLead:                  *pinLead,
		HealthRing:               *healthRing,
		Logger:                   log.Default(),
	}
	if *chainForward {
		// The publish surface gets its own listener: it is a WRITE
		// surface with no authentication, so it must not share the
		// client-facing server (a client could otherwise publish a
		// round's mailboxes before the real last mixer).
		cdnSrv := rpc.NewServer()
		rpc.RegisterCDN(cdnSrv, store)
		cdnBound, err := cdnSrv.Listen(*cdnAddr)
		if err != nil {
			log.Fatalf("cdn.publish listener: %v", err)
		}
		defer cdnSrv.Close()
		coord.ChainForward = true
		coord.CDNAddr = *cdnPublicAddr
		if coord.CDNAddr == "" {
			coord.CDNAddr = *cdnAddr
		}
		if strings.HasPrefix(coord.CDNAddr, ":") {
			log.Printf("warning: cdn public address %q has no host — last mixers will dial their own loopback; set -cdn-public-addr host:port for multi-machine deployments", coord.CDNAddr)
		}
		log.Printf("chain-forward data plane enabled (cdn.publish listening on %s, advertised as %s)", cdnBound, coord.CDNAddr)
	}

	if *frontendSpecs != "" {
		// Extra frontends: replay announcements to each one's replica
		// surface, and publish the full client-facing list in the
		// directory so clients can pool the tier and fail over.
		if strings.HasPrefix(*addr, ":") {
			log.Printf("warning: -addr %q has no host — the directory's frontend list will not resolve from other machines", *addr)
		}
		dir.FrontendAddrs = []string{*addr}
		for _, spec := range strings.Split(*frontendSpecs, ",") {
			clientAddr, replica, ok := strings.Cut(spec, "=")
			if !ok {
				log.Fatalf("-frontends entry %q: want clientAddr=replicaAddr", spec)
			}
			coord.Frontends = append(coord.Frontends, rpc.DialEntryReplica(replica))
			dir.FrontendAddrs = append(dir.FrontendAddrs, clientAddr)
			log.Printf("frontend %s joined (replica surface %s)", clientAddr, replica)
		}
	}

	if *cdnNodes != "" {
		dir.CDNAddrs = strings.Split(*cdnNodes, ",")
		log.Printf("directory advertises CDN tier %v", dir.CDNAddrs)
	}

	server := rpc.NewServer()
	rpc.RegisterFrontend(server, e, store, dir)
	// Read-only operator surface: the round-health ring plus the
	// scheduler's per-daemon scoreboard and bench/spare state.
	rpc.RegisterCoordinatorStatus(server, func() any {
		return struct {
			Health     []coordinator.RoundHealth `json:"health"`
			Scoreboard coordinator.Scoreboard    `json:"scoreboard"`
		}{coord.Status(), coord.Scoreboard()}
	})
	bound, err := server.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("alpenhorn-entry listening on %s", bound)

	stop := make(chan struct{})
	go runRounds(coord, wire.AddFriend, *afInterval, *submitWindow, stop)
	go runRounds(coord, wire.Dialing, *dlInterval, *submitWindow, stop)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	log.Println("shutting down")
	server.Close()
}

// runFrontendOnly joins an existing deployment as an additional entry
// frontend: it serves the full client surface (directory, submits, the
// entry.events push stream, mailbox fetches) backed by a local entry
// server whose announcement log the coordinator replays over the
// entry.replicate surface. Mailbox fetches proxy to the coordinator
// frontend — a pure frontend holds no CDN store of its own.
func runFrontendOnly(addr, replicaAddr, coordinatorAddr string) {
	primary := rpc.DialFrontend(coordinatorAddr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	dir, err := primary.Directory(ctx)
	cancel()
	if err != nil {
		log.Fatalf("fetching directory from coordinator %s: %v", coordinatorAddr, err)
	}
	log.Printf("joined deployment at %s (%d PKGs, %d mixers)", coordinatorAddr, len(dir.PKGAddrs), dir.NumMixers)

	e := entry.New()

	// The replica surface is a WRITE surface with no authentication
	// (announcement replay + batch collection), so like cdn.publish it
	// gets its own listener off the client-facing port.
	replicaSrv := rpc.NewServer()
	rpc.RegisterEntryReplica(replicaSrv, e)
	replicaBound, err := replicaSrv.Listen(replicaAddr)
	if err != nil {
		log.Fatalf("entry.replicate listener: %v", err)
	}
	defer replicaSrv.Close()

	server := rpc.NewServer()
	rpc.RegisterFrontend(server, e, remoteMailboxes{c: primary}, *dir)
	bound, err := server.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("alpenhorn-entry frontend listening on %s (replica surface %s)", bound, replicaBound)
	log.Printf("note: this frontend must be listed in the coordinator's -frontends BEFORE rounds open — the replicated log has no history replay")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	server.Close()
}

// remoteMailboxes satisfies rpc.MailboxSource by proxying fetches to the
// coordinator frontend, which owns the deployment's CDN store.
type remoteMailboxes struct {
	c *rpc.FrontendClient
}

func (m remoteMailboxes) Fetch(service wire.Service, round uint32, mailbox uint32) ([]byte, error) {
	return m.c.Fetch(context.Background(), service, round, mailbox)
}

func (m remoteMailboxes) FetchRange(service wire.Service, fromRound, toRound uint32, mailbox uint32) (map[uint32][]byte, error) {
	return m.c.FetchRange(context.Background(), service, fromRound, toRound, mailbox)
}

// runRounds drives one protocol's rounds on a timer: open, wait for the
// submit window, then close — which runs the data plane, publishes the
// mailboxes, and (for add-friend) erases the PKG master keys, since
// clients extract only during the submit window. Open and published
// announcements flow through the entry server's event log, which serves
// both the frontend.status poll surface and the entry.events push stream.
func runRounds(c *coordinator.Coordinator, service wire.Service, interval, window time.Duration, stop <-chan struct{}) {
	round := uint32(1)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		var err error
		if service == wire.AddFriend {
			_, err = c.OpenAddFriendRound(round)
		} else {
			_, err = c.OpenDialingRound(round)
		}
		if err != nil {
			// Not fatal: an open can fail transiently (a frontend replica
			// briefly unreachable, a PKG restarting). The round number is
			// burned — the local entry server may already have announced
			// it — so move on to a fresh one at the next tick.
			log.Printf("%s round %d open: %v (retrying with round %d next interval)", service, round, err, round+1)
			round++
			select {
			case <-ticker.C:
			case <-stop:
				return
			}
			continue
		}
		log.Printf("%s round %d open (submit window %v)", service, round, window)

		select {
		case <-time.After(window):
		case <-stop:
			return
		}

		if _, err := c.CloseRound(service, round); err != nil {
			// A failed round is not fatal: its keys are erased, clients
			// requeue, and the next round carries the traffic.
			log.Printf("%s round %d close: %v (continuing with next round)", service, round, err)
		} else {
			log.Printf("%s round %d mailboxes published", service, round)
		}
		// PKG master keys for the round were already erased inside
		// CloseRound, concurrently with the mix: extraction can only
		// happen during the submit window.

		round++
		select {
		case <-ticker.C:
		case <-stop:
			return
		}
	}
}
