// Command alpenhorn-client is an interactive Alpenhorn client (the
// command-line client the paper built for the Pond/PANDA integration,
// §8.5). It connects to a live deployment through the entry daemon:
//
//	alpenhorn-client -email alice@example.org -entry localhost:7000 \
//	    -inbox-dir /tmp/pkg-inbox -state alice.state
//
// Commands at the prompt:
//
//	addfriend <email>     queue a friend request
//	call <email> [intent] queue a call
//	friends               list the address book
//	secret                print the last call's session key (for PANDA)
//	quit                  save state and exit
//
// Round participation (cover traffic included) is owned by the client
// library: client.Run follows the frontend's round announcements —
// push-based entry.events against a current frontend, transparent
// status-polling fallback against an older one — and drives every
// submit and scan, including the bounded dial-scan backlog and the §5.1
// give-up policy. This binary only renders events and queues work.
package main

import (
	"bufio"
	"context"
	"encoding/base32"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"alpenhorn"
	"alpenhorn/internal/rpc"

	"crypto/ed25519"
	"flag"
)

// printHandler renders events to the terminal and auto-accepts friend
// requests after printing them (an interactive accept prompt would race
// with the round loop; the paper's CLI behaves the same way for demos).
type printHandler struct {
	mu       sync.Mutex
	lastCall *alpenhorn.Call
}

func (h *printHandler) NewFriend(email string, key ed25519.PublicKey) bool {
	fmt.Printf("\n[alpenhorn] friend request from %s (key %x…) — auto-accepting\n> ", email, key[:8])
	return true
}

func (h *printHandler) ConfirmedFriend(email string) {
	fmt.Printf("\n[alpenhorn] friendship with %s confirmed\n> ", email)
}

func (h *printHandler) IncomingCall(call alpenhorn.Call) {
	h.mu.Lock()
	h.lastCall = &call
	h.mu.Unlock()
	fmt.Printf("\n[alpenhorn] incoming call from %s (intent %d, round %d)\n> ", call.Friend, call.Intent, call.Round)
}

func (h *printHandler) OutgoingCall(call alpenhorn.Call) {
	h.mu.Lock()
	h.lastCall = &call
	h.mu.Unlock()
	fmt.Printf("\n[alpenhorn] call to %s sent (round %d)\n> ", call.Friend, call.Round)
}

func (h *printHandler) Error(err error) {
	log.Printf("[alpenhorn] %v", err)
}

// statePersister writes client state to a file.
type statePersister struct{ path string }

func (p statePersister) Save(state []byte) error {
	return os.WriteFile(p.path, state, 0o600)
}

func main() {
	emailAddr := flag.String("email", "", "your Alpenhorn username (email address)")
	entryAddr := flag.String("entry", "localhost:7000", "entry daemon address")
	inboxDir := flag.String("inbox-dir", "", "directory where the PKG daemons write confirmation tokens")
	statePath := flag.String("state", "", "client state file (default: <email>.state)")
	flag.Parse()
	if *emailAddr == "" {
		log.Fatal("need -email")
	}
	if *statePath == "" {
		*statePath = strings.ReplaceAll(*emailAddr, "@", "_at_") + ".state"
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	frontend := rpc.DialFrontend(*entryAddr)
	dir, err := frontend.Directory(ctx)
	if err != nil {
		log.Fatalf("fetching deployment directory: %v", err)
	}

	cfg := alpenhorn.Config{
		Email:      *emailAddr,
		Entry:      frontend,
		Mailboxes:  frontend,
		NumIntents: 10,
		Handler:    &printHandler{},
		Persister:  statePersister{path: *statePath},
	}
	if len(dir.CDNAddrs) > 0 {
		// The deployment runs a dedicated CDN tier: fetch mailboxes from
		// it directly (failing over between nodes) instead of proxying
		// every fetch through the frontend.
		pool := rpc.DialCDNPool(dir.CDNAddrs...)
		defer pool.Close()
		cfg.Mailboxes = pool
		fmt.Printf("fetching mailboxes from CDN tier %v\n", dir.CDNAddrs)
	}
	for _, a := range dir.PKGAddrs {
		cfg.PKGs = append(cfg.PKGs, rpc.DialPKG(a))
	}
	for _, k := range dir.PKGKeys {
		cfg.PKGKeys = append(cfg.PKGKeys, ed25519.PublicKey(k))
	}
	for _, k := range dir.PKGBLSKeys {
		blsKey, err := rpc.UnmarshalBLSKey(k)
		if err != nil {
			log.Fatalf("bad PKG BLS key in directory: %v", err)
		}
		cfg.PKGBLSKeys = append(cfg.PKGBLSKeys, blsKey)
	}
	for _, k := range dir.MixerKeys {
		cfg.MixerKeys = append(cfg.MixerKeys, ed25519.PublicKey(k))
	}

	var client *alpenhorn.Client
	if data, err := os.ReadFile(*statePath); err == nil {
		client, err = alpenhorn.LoadClient(cfg, data)
		if err != nil {
			log.Fatalf("loading state: %v", err)
		}
		fmt.Printf("restored state from %s\n", *statePath)
	} else {
		client, err = alpenhorn.NewClient(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("registering with PKGs...")
		if err := client.Register(ctx); err != nil {
			log.Fatalf("registration: %v", err)
		}
		if err := confirmFromInbox(ctx, client, *emailAddr, *inboxDir, len(cfg.PKGs)); err != nil {
			log.Fatalf("confirmation: %v", err)
		}
		fmt.Println("registered and confirmed")
	}

	// The library owns the round loop; this goroutine lives until quit.
	go func() {
		if err := client.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("round loop stopped: %v", err)
		}
	}()

	fmt.Printf("alpenhorn-client for %s — type 'help'\n", *emailAddr)
	handler := cfg.Handler.(*printHandler)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "help":
			fmt.Println("commands: addfriend <email> | call <email> [intent] | friends | secret | quit")
		case "addfriend":
			if len(fields) < 2 {
				fmt.Println("usage: addfriend <email>")
				break
			}
			if err := client.AddFriend(fields[1], nil); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("friend request queued for the next add-friend round")
			}
		case "call":
			if len(fields) < 2 {
				fmt.Println("usage: call <email> [intent]")
				break
			}
			intent := 0
			if len(fields) > 2 {
				intent, _ = strconv.Atoi(fields[2])
			}
			if err := client.Call(fields[1], uint32(intent)); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("call queued for the next dialing round")
			}
		case "friends":
			for _, f := range client.Friends() {
				status := "pending"
				if f.Confirmed {
					status = "confirmed"
				}
				fmt.Printf("  %s (%s)\n", f.Email, status)
			}
		case "secret":
			handler.mu.Lock()
			call := handler.lastCall
			handler.mu.Unlock()
			if call == nil {
				fmt.Println("no call yet")
			} else {
				fmt.Printf("session key with %s: %s\n", call.Friend,
					base32.StdEncoding.EncodeToString(call.SessionKey[:20]))
			}
		case "quit", "exit":
			cancel()
			return
		default:
			fmt.Println("unknown command; type 'help'")
		}
		fmt.Print("> ")
	}
}

// confirmFromInbox reads the per-PKG confirmation tokens written by
// alpenhorn-pkg daemons into the inbox directory.
func confirmFromInbox(ctx context.Context, client *alpenhorn.Client, emailAddr, inboxDir string, numPKGs int) error {
	if inboxDir == "" {
		return fmt.Errorf("need -inbox-dir to read confirmation tokens")
	}
	name := strings.ReplaceAll(emailAddr, "@", "_at_") + ".token"
	// Every PKG daemon writes to its own inbox dir; accept either a
	// shared dir (same token file overwritten — confirm each PKG with
	// the freshest read) or per-PKG subdirectories pkg0/, pkg1/, ...
	for i := 0; i < numPKGs; i++ {
		candidates := []string{
			filepath.Join(inboxDir, fmt.Sprintf("pkg%d", i), name),
			filepath.Join(inboxDir, name),
		}
		var lastErr error
		confirmed := false
		for _, p := range candidates {
			data, err := os.ReadFile(p)
			if err != nil {
				lastErr = err
				continue
			}
			if err := client.ConfirmRegistration(ctx, i, strings.TrimSpace(string(data))); err != nil {
				lastErr = err
				continue
			}
			confirmed = true
			break
		}
		if !confirmed {
			return fmt.Errorf("PKG %d: %v", i, lastErr)
		}
	}
	return nil
}
