// Command anytrust demonstrates Alpenhorn's anytrust guarantee concretely:
// with 10 PKG servers, an adversary holding NINE of the ten master secrets
// still cannot decrypt a captured friend request — but the intended
// recipient, aggregating all ten identity key shares, can.
//
// It also shows what the adversary DOES see: a batch of identically-sized
// onions and mailboxes padded with noise, i.e. nothing.
//
// Run it with:
//
//	go run ./examples/anytrust
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"alpenhorn/internal/ibe"
	"alpenhorn/internal/wire"
)

func main() {
	const numPKGs = 10
	fmt.Printf("setting up %d independent PKGs (anytrust: only ONE must be honest)\n", numPKGs)

	var pubs []*ibe.MasterPublicKey
	var privs []*ibe.MasterPrivateKey
	for i := 0; i < numPKGs; i++ {
		pub, priv, err := ibe.Setup(rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		pubs = append(pubs, pub)
		privs = append(privs, priv)
	}

	// Alice encrypts a friend request to Bob under the SUM of all master
	// public keys — one ciphertext, constant size, no directory lookup.
	agg := ibe.AggregateMasterKeys(pubs...)
	request := []byte("friend request: alice@example.org -> bob@example.org")
	ctxt, err := ibe.Encrypt(rand.Reader, agg, "bob@example.org", request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted friend request: %d bytes (overhead %d, independent of PKG count)\n",
		len(ctxt), ibe.Overhead)

	// The adversary compromises PKGs 0..8 and extracts Bob's identity
	// key share from each.
	fmt.Printf("\nadversary compromises %d of %d PKGs and extracts Bob's key shares...\n", numPKGs-1, numPKGs)
	var stolen []*ibe.IdentityPrivateKey
	for i := 0; i < numPKGs-1; i++ {
		stolen = append(stolen, ibe.Extract(privs[i], "bob@example.org"))
	}
	partial := ibe.AggregatePrivateKeys(stolen...)
	if _, ok := ibe.Decrypt(partial, ctxt); ok {
		log.Fatal("BUG: adversary decrypted with 9/10 shares")
	}
	fmt.Println("decryption with 9/10 shares: FAILED (as designed)")

	// Bob, authenticating to all ten PKGs, gets all ten shares.
	all := append(stolen, ibe.Extract(privs[numPKGs-1], "bob@example.org"))
	complete := ibe.AggregatePrivateKeys(all...)
	msg, ok := ibe.Decrypt(complete, ctxt)
	if !ok {
		log.Fatal("BUG: legitimate decryption failed")
	}
	fmt.Printf("decryption with 10/10 shares: ok → %q\n", msg)

	// Forward secrecy: the honest PKG erases its round master secret;
	// now even compromising ALL PKGs later reveals nothing.
	fmt.Println("\nhonest PKG erases its round master secret (end of round)...")
	privs[numPKGs-1].Erase()
	fmt.Printf("master secret erased: %v — recorded ciphertexts for this round are now\n", privs[numPKGs-1].Erased())
	fmt.Println("undecryptable even if every PKG is compromised in the future (§4.4)")

	// What the network adversary sees: fixed-size requests.
	fmt.Printf("\nwhat the wire shows: every client's request is exactly %d bytes,\n",
		wire.OnionSize(wire.AddFriend, 3))
	fmt.Println("every round, real or cover — nothing to correlate.")
}
