// Command quickstart is the smallest complete Alpenhorn session: two users
// who know only each other's email addresses establish a friendship and a
// fresh shared session key, with every message travelling through the real
// protocol stack (IBE-encrypted friend requests, a 3-server mixnet with
// noise, Bloom-filter dialing mailboxes).
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	"alpenhorn"
	"alpenhorn/internal/sim"
)

func main() {
	// A deployment: 3 PKG servers, 3 mixnet servers, an entry server,
	// and a mailbox CDN, all in-process. The anytrust guarantee means
	// every component except ONE mixer and ONE PKG could be malicious
	// and the metadata below would still be protected.
	network, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Each user supplies a handler: the application callbacks from
	// Figure 1 of the paper.
	aliceHandler := &sim.Handler{AcceptAll: true}
	bobHandler := &sim.Handler{AcceptAll: true}

	alice, err := network.NewClient("alice@example.org", aliceHandler)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := network.NewClient("bob@example.org", bobHandler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered alice@example.org and bob@example.org (email-confirmed at 3 PKGs)")

	// Alice adds Bob knowing ONLY his email address: no key lookup, no
	// out-of-band exchange. (She could pass Bob's public key as a second
	// argument if she had it — e.g. from a business card.)
	if err := alice.AddFriend("bob@example.org", nil); err != nil {
		log.Fatal(err)
	}

	clients := []*alpenhorn.Client{alice, bob}

	// Add-friend round 1: Alice's encrypted request reaches Bob's
	// mailbox; his handler accepts it.
	if err := network.RunAddFriendRound(1, clients); err != nil {
		log.Fatal(err)
	}
	// Add-friend round 2: Bob's response confirms the friendship; both
	// sides now share a keywheel.
	if err := network.RunAddFriendRound(2, clients); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friendship confirmed: alice→%v, bob→%v\n",
		alice.IsFriend("bob@example.org"), bob.IsFriend("alice@example.org"))

	// Alice calls Bob with intent 0 ("let's chat right now", §5.3).
	if err := alice.Call("bob@example.org", 0); err != nil {
		log.Fatal(err)
	}
	for round := uint32(1); round <= 6; round++ {
		if err := network.RunDialRound(round, clients); err != nil {
			log.Fatal(err)
		}
		if len(bobHandler.IncomingCalls()) > 0 {
			break
		}
	}

	out := aliceHandler.OutgoingCalls()
	in := bobHandler.IncomingCalls()
	if len(out) == 0 || len(in) == 0 {
		log.Fatal("call did not complete")
	}
	fmt.Printf("alice's session key: %s…\n", hex.EncodeToString(out[0].SessionKey[:8]))
	fmt.Printf("bob's   session key: %s…\n", hex.EncodeToString(in[0].SessionKey[:8]))
	if out[0].SessionKey == in[0].SessionKey {
		fmt.Println("keys match: hand this to your messaging protocol (see examples/messenger)")
	} else {
		log.Fatal("keys differ: this is a bug")
	}
}
