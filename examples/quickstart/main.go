// Command quickstart is the smallest complete Alpenhorn session: two users
// who know only each other's email addresses establish a friendship and a
// fresh shared session key, with every message travelling through the real
// protocol stack (IBE-encrypted friend requests, a 3-server mixnet with
// noise, Bloom-filter dialing mailboxes).
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	"time"

	"alpenhorn/internal/sim"
)

func main() {
	// A deployment: 3 PKG servers, 3 mixnet servers, an entry server,
	// and a mailbox CDN, all in-process. The anytrust guarantee means
	// every component except ONE mixer and ONE PKG could be malicious
	// and the metadata below would still be protected.
	network, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Each user supplies a handler: the application callbacks from
	// Figure 1 of the paper (NewFriend, ConfirmedFriend, IncomingCall…).
	aliceHandler := &sim.Handler{AcceptAll: true}
	bobHandler := &sim.Handler{AcceptAll: true}

	alice, err := network.NewClient("alice@example.org", aliceHandler)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := network.NewClient("bob@example.org", bobHandler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered alice@example.org and bob@example.org (email-confirmed at 3 PKGs)")

	// The event-driven API: rounds are announced by the deployment and
	// each client's Run loop follows them — submitting every round
	// (cover traffic included, which is what hides real activity),
	// scanning every published mailbox, and delivering results through
	// the Handler. No application-side round bookkeeping.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	network.StartRounds(ctx, sim.RoundDriver{WaitSubmissions: 2})
	go func() { _ = alice.Run(ctx) }()
	go func() { _ = bob.Run(ctx) }()

	// Alice adds Bob knowing ONLY his email address: no key lookup, no
	// out-of-band exchange. (She could pass Bob's public key as a second
	// argument if she had it — e.g. from a business card.) The request
	// goes out in the next add-friend round; Bob's handler accepts it
	// and his response confirms the friendship a round later.
	if err := alice.AddFriend("bob@example.org", nil); err != nil {
		log.Fatal(err)
	}
	if !aliceHandler.WaitConfirmed("bob@example.org", time.Minute) ||
		!bobHandler.WaitConfirmed("alice@example.org", time.Minute) {
		log.Fatal("friendship did not complete")
	}
	fmt.Printf("friendship confirmed: alice→%v, bob→%v\n",
		alice.IsFriend("bob@example.org"), bob.IsFriend("alice@example.org"))

	// Alice calls Bob with intent 0 ("let's chat right now", §5.3). The
	// dial token rides a coming dialing round; Bob's scan finds it.
	if err := alice.Call("bob@example.org", 0); err != nil {
		log.Fatal(err)
	}
	out, ok := aliceHandler.WaitOutgoing(1, time.Minute)
	if !ok {
		log.Fatal("call was never sent")
	}
	in, ok := bobHandler.WaitIncoming(1, time.Minute)
	if !ok {
		log.Fatal("call was never received")
	}

	fmt.Printf("alice's session key: %s…\n", hex.EncodeToString(out[0].SessionKey[:8]))
	fmt.Printf("bob's   session key: %s…\n", hex.EncodeToString(in[0].SessionKey[:8]))
	if out[0].SessionKey == in[0].SessionKey {
		fmt.Println("keys match: hand this to your messaging protocol (see examples/messenger)")
	} else {
		log.Fatal("keys differ: this is a bug")
	}
}
