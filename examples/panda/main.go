// Command panda reproduces the paper's Pond integration (§8.5): a
// standalone Alpenhorn client that lets two users friend and call each
// other, then PRINTS the resulting shared secret so they can paste it into
// PANDA (Pond's shared-secret key-agreement protocol).
//
// "This eliminates the need to generate a shared secret out-of-band." —§8.5
//
// Run it with:
//
//	go run ./examples/panda
package main

import (
	"context"
	"encoding/base32"
	"fmt"
	"log"
	"time"

	"alpenhorn/internal/sim"
)

func main() {
	network, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	aliceH := &sim.Handler{AcceptAll: true}
	bobH := &sim.Handler{AcceptAll: true}
	alice, err := network.NewClient("alice@pond.example", aliceH)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := network.NewClient("bob@pond.example", bobH)
	if err != nil {
		log.Fatal(err)
	}

	// Both clients participate in every announced round through Run; the
	// handshake and the call ride whichever rounds come next.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	network.StartRounds(ctx, sim.RoundDriver{WaitSubmissions: 2})
	go func() { _ = alice.Run(ctx) }()
	go func() { _ = bob.Run(ctx) }()

	fmt.Println("alpenhorn-panda: friending alice@pond.example <-> bob@pond.example")
	if err := alice.AddFriend("bob@pond.example", nil); err != nil {
		log.Fatal(err)
	}
	if !aliceH.WaitConfirmed("bob@pond.example", time.Minute) ||
		!bobH.WaitConfirmed("alice@pond.example", time.Minute) {
		log.Fatal("friendship did not complete")
	}
	if err := alice.Call("bob@pond.example", 0); err != nil {
		log.Fatal(err)
	}
	out, okOut := aliceH.WaitOutgoing(1, time.Minute)
	in, okIn := bobH.WaitIncoming(1, time.Minute)
	if !okOut || !okIn || out[0].SessionKey != in[0].SessionKey {
		log.Fatal("call did not complete")
	}

	// PANDA secrets are short human-enterable strings; encode the
	// session key the way a user would copy it into Pond's PANDA dialog.
	secret := base32.StdEncoding.EncodeToString(out[0].SessionKey[:20])
	fmt.Println()
	fmt.Println("shared secret established with metadata privacy and forward secrecy.")
	fmt.Println("paste this into PANDA on both Pond clients:")
	fmt.Printf("\n    %s\n\n", secret)
	fmt.Println("(both users see the same value; verify the first characters out loud)")
}
