// Command messenger reproduces the paper's §8.5 Vuvuzela integration: a
// private text-messaging session whose conversation keys are bootstrapped
// by Alpenhorn instead of out-of-band key distribution.
//
// The flow mirrors the /addfriend and /call commands the paper added to the
// Vuvuzela client:
//
//	/addfriend bob@example.org   → Alpenhorn add-friend protocol (2 rounds)
//	/call bob@example.org        → Alpenhorn dialing protocol → session key
//	<conversation rounds>        → Vuvuzela-style dead-drop exchange
//
// Run it with:
//
//	go run ./examples/messenger
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"alpenhorn/internal/sim"
	"alpenhorn/internal/vuvuzela"
)

func main() {
	network, err := sim.NewNetwork(sim.Config{})
	if err != nil {
		log.Fatal(err)
	}
	aliceH := &sim.Handler{AcceptAll: true}
	bobH := &sim.Handler{AcceptAll: true}
	alice, err := network.NewClient("alice@example.org", aliceH)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := network.NewClient("bob@example.org", bobH)
	if err != nil {
		log.Fatal(err)
	}

	// Rounds are driven by the deployment; each client's Run loop follows
	// the announcements and delivers results through its handler (the
	// paper's event-driven Figure 1 API).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	network.StartRounds(ctx, sim.RoundDriver{WaitSubmissions: 2})
	go func() { _ = alice.Run(ctx) }()
	go func() { _ = bob.Run(ctx) }()

	// /addfriend bob@example.org
	fmt.Println("alice> /addfriend bob@example.org")
	if err := alice.AddFriend("bob@example.org", nil); err != nil {
		log.Fatal(err)
	}
	if !aliceH.WaitConfirmed("bob@example.org", time.Minute) ||
		!bobH.WaitConfirmed("alice@example.org", time.Minute) {
		log.Fatal("friendship did not complete")
	}
	fmt.Println("alpenhorn: friendship confirmed (keywheels synchronized)")

	// /call bob@example.org
	fmt.Println("alice> /call bob@example.org")
	if err := alice.Call("bob@example.org", 0); err != nil {
		log.Fatal(err)
	}
	out, ok := aliceH.WaitOutgoing(1, time.Minute)
	if !ok {
		log.Fatal("call did not complete")
	}
	in, ok := bobH.WaitIncoming(1, time.Minute)
	if !ok {
		log.Fatal("call did not complete")
	}
	fmt.Println("alpenhorn: call established, handing session key to the conversation protocol")

	// The paper's integration point: Vuvuzela's conversation protocol
	// "expected a public key as input, rather than a shared secret (as
	// provided by Call)" — our conversation layer takes the shared
	// secret directly.
	exchange := vuvuzela.NewExchange()
	aliceConv := vuvuzela.NewConversation(out[0].SessionKey, exchange, true)
	bobConv := vuvuzela.NewConversation(in[0].SessionKey, exchange, false)

	script := []struct {
		fromAlice, fromBob string
	}{
		{"hey bob — this channel leaked no metadata to set up", "hi alice! not even the servers know we're talking"},
		{"the keywheel gives us a fresh key next call too", "forward secrecy for the win. same time tomorrow?"},
	}
	for i, msgs := range script {
		round := uint32(i + 1)
		if err := aliceConv.Send(round, []byte(msgs.fromAlice)); err != nil {
			log.Fatal(err)
		}
		if err := bobConv.Send(round, []byte(msgs.fromBob)); err != nil {
			log.Fatal(err)
		}
		exchange.Exchange(round)

		got, ok := bobConv.Receive(round)
		if !ok {
			log.Fatal("bob missed a message")
		}
		fmt.Printf("  [round %d] alice → bob: %s\n", round, got)
		got, ok = aliceConv.Receive(round)
		if !ok {
			log.Fatal("alice missed a message")
		}
		fmt.Printf("  [round %d] bob → alice: %s\n", round, got)
	}
	fmt.Println("conversation complete")
}
