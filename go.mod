module alpenhorn

go 1.21
