// Package alpenhorn is a from-scratch reproduction of Alpenhorn, the system
// described in "Alpenhorn: Bootstrapping Secure Communication without
// Leaking Metadata" (Lazar & Zeldovich, OSDI 2016).
//
// Alpenhorn lets two users who know only each other's email addresses
// establish a fresh shared session key while hiding the METADATA of the
// exchange: an adversary observing all traffic — and controlling all but
// one server — cannot tell whom (or whether) a user is befriending or
// calling, and compromising a machine later reveals nothing about past
// communication (forward secrecy for metadata).
//
// The package exposes the EVENT-DRIVEN client API from Figure 1 of the
// paper: the application queues intents and receives callbacks, and the
// library participates in every round on its behalf:
//
//	client, _ := alpenhorn.NewClient(cfg)   // cfg names the servers + Handler
//	client.Register(ctx)                    // email-verified registration
//	go client.Run(ctx)                      // the managed round loop
//	client.AddFriend("bob@example.org", nil)
//	client.Call("bob@example.org", 0)       // intent 0
//
// Run owns everything between the application and the deployment's round
// schedule: it follows the frontend's round announcements (a push-based
// entry.events stream when the frontend serves one, transparent
// status-polling fallback when it does not), submits every round — a real
// request when one is queued, indistinguishable cover traffic otherwise —
// scans every published mailbox through a bounded, crash-persistent
// backlog with ranged fetches, retries failed scans on the §5.1 time
// budget before advancing the keywheels past them, and reconnects with
// backoff when the frontend dies. ConnectAddFriend and ConnectDialing
// expose the same loop per service, each returning a handle with
// Err/Close. Friendship confirmations and incoming calls are delivered
// through the application's Handler (the NewFriend / IncomingCall
// callbacks of the paper).
//
// Every server-touching method takes a context.Context, honored through
// the transport: cancelling it interrupts in-flight network calls, so a
// dead frontend can never wedge a client.
//
// Three protocols underpin the API:
//
//   - The add-friend protocol (§4) encrypts friend requests with
//     Anytrust-IBE — Boneh-Franklin identity-based encryption where the
//     master keys of n independent PKG servers are summed — so the sender
//     never looks up the recipient's key (no lookup, no metadata), and the
//     request stays private if any one PKG is honest.
//   - The dialing protocol (§5) turns each friendship's shared secret into
//     a keywheel that both sides evolve in lockstep; calls are 256-bit
//     dial tokens delivered through Bloom-filter-encoded mailboxes.
//   - Both protocols submit fixed-size requests through a Vuvuzela-style
//     verifiable-settings mixnet with Laplace noise (§6), in every round,
//     whether or not the user is doing anything.
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package alpenhorn

import (
	"alpenhorn/internal/core"
)

// Client is an Alpenhorn client: a long-term signing key plus an address
// book of keywheels. See the package documentation for the lifecycle.
type Client = core.Client

// Config wires a Client to its servers and application callbacks.
type Config = core.Config

// Handler receives friend requests, confirmations, and calls.
type Handler = core.Handler

// Call is an established incoming or outgoing call; both sides hold the
// same SessionKey.
type Call = core.Call

// Friend is an address book entry.
type Friend = core.Friend

// Persister stores serialized client state.
type Persister = core.Persister

// ServiceHandle is one service's running round loop, returned by
// Client.ConnectAddFriend / Client.ConnectDialing.
type ServiceHandle = core.ServiceHandle

// RoundStatus is the frontend's per-service round progress (the poll
// surface; push transports fold their events into the same shape).
type RoundStatus = core.RoundStatus

// Server interfaces: implementations may be in-process (internal/sim) or
// network clients (cmd daemons). All methods take a leading context.
type (
	// PKG is the client's view of one private-key generator server.
	PKG = core.PKG
	// EntryServer is the client's view of the entry server.
	EntryServer = core.EntryServer
	// MailboxStore is the client's view of the mailbox CDN; FetchRange
	// lets a catching-up client cover a span of rounds in one request.
	MailboxStore = core.MailboxStore
	// StatusProvider is the optional poll-based round-progress surface;
	// Run uses it when the frontend cannot push events.
	StatusProvider = core.StatusProvider
	// RoundWatcher is the optional push-based round-event surface
	// (resumable by cursor); Run prefers it when available.
	RoundWatcher = core.RoundWatcher
)

// ErrEventsUnsupported is returned by a RoundWatcher whose frontend does
// not stream round events; Run falls back to Status polling.
var ErrEventsUnsupported = core.ErrEventsUnsupported

// NewClient creates a client with a fresh long-term signing key.
// Call Register (then ConfirmRegistration with the emailed tokens) before
// running rounds.
func NewClient(cfg Config) (*Client, error) {
	return core.NewClient(cfg)
}

// LoadClient restores a client from state produced by Client.MarshalState.
func LoadClient(cfg Config, state []byte) (*Client, error) {
	return core.LoadClient(cfg, state)
}
