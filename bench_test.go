// Benchmarks reproducing every figure and measured claim in the Alpenhorn
// paper's evaluation (§8). Each benchmark corresponds to an entry in the
// experiment index of EXPERIMENTS.md; cmd/alpenhorn-bench prints the full
// series the paper's figures plot. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics are the paper-comparable quantities (mailbox
// bytes, requests/sec, projected latency seconds).
package alpenhorn_test

import (
	"context"
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"alpenhorn/internal/bloom"
	"alpenhorn/internal/cdn"
	"alpenhorn/internal/coordinator"
	"alpenhorn/internal/entry"
	"alpenhorn/internal/ibe"
	"alpenhorn/internal/keywheel"
	"alpenhorn/internal/mixnet"
	"alpenhorn/internal/model"
	"alpenhorn/internal/noise"
	"alpenhorn/internal/onionbox"
	"alpenhorn/internal/pkgserver"
	"alpenhorn/internal/sim"
	"alpenhorn/internal/wire"

	emailpkg "alpenhorn/internal/email"
)

func testingNow() time.Time            { return time.Now() }
func testingSince(t time.Time) float64 { return time.Since(t).Seconds() }

// ---- Figure 6 / Figure 7: client bandwidth vs round duration ----

// BenchmarkFig6AddFriendBandwidth regenerates Figure 6: add-friend client
// bandwidth at 100K/1M/10M users. The mailbox model is driven by this
// codebase's real message sizes; the benchmark measures the cost of
// evaluating a full sweep and reports the headline bandwidth numbers.
func BenchmarkFig6AddFriendBandwidth(b *testing.B) {
	durations := []float64{1800, 3600, 2 * 3600, 4 * 3600, 8 * 3600, 24 * 3600}
	var last float64
	for i := 0; i < b.N; i++ {
		for _, users := range []float64{1e5, 1e6, 1e7} {
			p := model.PaperParams(users, 3)
			for _, d := range durations {
				last = p.AddFriendBandwidth(d)
			}
		}
	}
	_ = last
	p := model.PaperParams(1e6, 3)
	b.ReportMetric(p.AddFriendMailboxModel().Bytes/1e6, "MB/mailbox@1M")
	b.ReportMetric(p.AddFriendBandwidth(3600)/1024, "KB/s@1M,1h")
	b.ReportMetric(model.PaperParams(1e7, 3).AddFriendBandwidth(3600)/1024, "KB/s@10M,1h")
}

// BenchmarkFig7DialingBandwidth regenerates Figure 7: dialing client
// bandwidth at 100K/1M/10M users.
func BenchmarkFig7DialingBandwidth(b *testing.B) {
	durations := []float64{60, 120, 180, 240, 300, 480, 600}
	var last float64
	for i := 0; i < b.N; i++ {
		for _, users := range []float64{1e5, 1e6, 1e7} {
			p := model.PaperParams(users, 3)
			for _, d := range durations {
				last = p.DialingBandwidth(d)
			}
		}
	}
	_ = last
	b.ReportMetric(model.PaperParams(1e6, 3).DialingMailboxModel().Bytes/1e6, "MB/filter@1M")
	b.ReportMetric(model.PaperParams(1e7, 3).DialingBandwidth(300)/1024, "KB/s@10M,5min")
}

// ---- Figures 8/9: round latency vs users and servers ----

// runMixRound measures one real mix round over an in-process chain with
// the given synthetic batch size, returning seconds per message.
func runMixRound(b *testing.B, service wire.Service, numServers, batchSize int) float64 {
	b.Helper()
	nz := noise.Laplace{Mu: 2, B: 0}
	var mixers []*mixnet.Server
	for i := 0; i < numServers; i++ {
		m, err := mixnet.New(mixnet.Config{
			Name: "m", Position: i, ChainLength: numServers,
			AddFriendNoise: &nz, DialingNoise: &nz,
		})
		if err != nil {
			b.Fatal(err)
		}
		mixers = append(mixers, m)
	}
	e := entry.New()
	coord := coordinator.New(e, mixers, nil, cdn.NewStore(2))
	coord.SetExpectedVolume(service, batchSize)

	var settings *wire.RoundSettings
	var err error
	if service == wire.AddFriend {
		b.Fatal("use dialing for mix-cost calibration (no PKGs needed)")
	}
	settings, err = coord.OpenDialingRound(1)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := sim.GenerateBatch(nil, settings, sim.Workload{
		Real:  batchSize / 20,
		Cover: batchSize - batchSize/20,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, onion := range batch {
		if err := e.Submit(wire.Dialing, 1, onion); err != nil {
			b.Fatal(err)
		}
	}
	start := testingNow()
	if _, err := coord.CloseRound(wire.Dialing, 1); err != nil {
		b.Fatal(err)
	}
	elapsed := testingSince(start)
	return elapsed / float64(batchSize) / float64(numServers)
}

// BenchmarkFig8AddFriendLatency regenerates Figure 8's shape: measured
// per-message mix cost at laptop scale, extrapolated to 10K-10M users via
// the calibrated model, for 3/5/10 servers.
func BenchmarkFig8AddFriendLatency(b *testing.B) {
	var perMsg float64
	for i := 0; i < b.N; i++ {
		perMsg = runMixRound(b, wire.Dialing, 3, 4000)
	}
	cal := model.PaperCalibration()
	cal.MixSecondsPerMessage = perMsg
	// The Montgomery-limb pairing decrypts within ~4x of the paper's
	// BN-256 assembly (it was ~100x off on big.Int before the limb
	// backend); report both calibrations to separate model shape from
	// substrate speed.
	cal.IBEDecryptSeconds = measureIBEDecrypt(b)
	ours := model.PaperParams(1e7, 3).AddFriendLatency(cal)
	paper := model.PaperParams(1e7, 3).AddFriendLatency(model.PaperCalibration())
	b.ReportMetric(perMsg*1e6, "µs/msg/server")
	b.ReportMetric(ours, "s@10M,3srv(ours)")
	b.ReportMetric(paper, "s@10M,3srv(papercal)")
}

// BenchmarkFig9DialingLatency regenerates Figure 9's shape.
func BenchmarkFig9DialingLatency(b *testing.B) {
	var perMsg float64
	for i := 0; i < b.N; i++ {
		perMsg = runMixRound(b, wire.Dialing, 3, 4000)
	}
	cal := model.PaperCalibration()
	cal.MixSecondsPerMessage = perMsg
	b.ReportMetric(perMsg*1e6, "µs/msg/server")
	b.ReportMetric(model.PaperParams(1e7, 3).DialingLatency(cal, 1000, 10), "s@10M,3srv")
	b.ReportMetric(model.PaperParams(1e7, 10).DialingLatency(cal, 1000, 10), "s@10M,10srv")
}

// ---- Figure 10: Zipf-skewed popularity ----

// BenchmarkFig10ZipfSkew regenerates Figure 10: mailbox-size spread (which
// drives per-user latency spread) as recipient popularity skews.
func BenchmarkFig10ZipfSkew(b *testing.B) {
	const users = 100000
	const k = 4
	var maxLoad int
	for i := 0; i < b.N; i++ {
		for _, s := range []float64{0, 0.5, 1, 1.5, 2} {
			z := model.NewZipf(users, s)
			counts, err := z.MailboxLoad(rand.Reader, users/20, k)
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range counts {
				if c > maxLoad {
					maxLoad = c
				}
			}
		}
	}
	// Paper: median latency constant; max grows with skew. Report the
	// top-10 concentration at s=2 (paper: 94.2%).
	b.ReportMetric(model.NewZipf(1000000, 2).TopShare(10)*100, "top10-share-%@s=2")
}

// ---- §8.2 microbenchmarks (T1-T4) ----

func measureIBEDecrypt(b *testing.B) float64 {
	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	// Scan configuration (see model.CostCalibration.IBEDecryptSeconds):
	// clients trial-decrypt mailboxes through DecryptBatch with a key whose
	// Miller ladder is precomputed once, so the calibration wants the
	// marginal per-ciphertext cost of the batched pipeline.
	key := ibe.Extract(priv, "bob@example.org").Precompute()
	const batch = 16
	ctxts := make([][]byte, batch)
	for i := 1; i < batch; i++ {
		c, err := ibe.RandomCiphertext(rand.Reader, wire.FriendRequestSize)
		if err != nil {
			b.Fatal(err)
		}
		ctxts[i] = c
	}
	ctxts[0], err = ibe.Encrypt(rand.Reader, pub, "bob@example.org", make([]byte, wire.FriendRequestSize))
	if err != nil {
		b.Fatal(err)
	}
	ibe.DecryptBatch(key, ctxts) // warm the scratch pool
	start := testingNow()
	const reps = 3
	for i := 0; i < reps; i++ {
		if _, oks := ibe.DecryptBatch(key, ctxts); !oks[0] {
			b.Fatal("decrypt failed")
		}
	}
	return testingSince(start) / (reps * batch)
}

// BenchmarkIBEDecrypt is T1: the paper's prototype does 800 decryptions
// per second per core on BN-256 assembly; this measures our BN254
// substitute on the Montgomery-limb backend (~200+/sec — within ~4x of
// the assembly, vs ~7/sec on the original big.Int arithmetic; see
// EXPERIMENTS.md). The regression pin in internal/bn254 keeps the limb
// backend ≥5x the retained big.Int reference.
func BenchmarkIBEDecrypt(b *testing.B) {
	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	ctxt, err := ibe.Encrypt(rand.Reader, pub, "bob@example.org", make([]byte, wire.FriendRequestSize))
	if err != nil {
		b.Fatal(err)
	}
	key := ibe.Extract(priv, "bob@example.org")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ibe.Decrypt(key, ctxt)
	}
	b.ReportMetric(1/b.Elapsed().Seconds()*float64(b.N), "decrypts/sec")
}

// BenchmarkMailboxScan is T1's scan claim: time to trial-decrypt a
// mailbox. The paper scans 24,000 requests in 8 s on 4 cores; we scan a
// proportionally smaller mailbox and report the per-request cost. The
// "batched" sub-benchmark is the real client path — DecryptBatch with the
// Montgomery-trick shared inversions, as core.Client.ScanAddFriendRound
// runs it — and "unbatched" is the per-ciphertext loop it replaced, kept
// for the speedup comparison.
func BenchmarkMailboxScan(b *testing.B) {
	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	key := ibe.Extract(priv, "bob@example.org")
	const mailboxSize = 16
	ctxts := make([][]byte, mailboxSize)
	for i := 0; i < mailboxSize-1; i++ {
		c, err := ibe.RandomCiphertext(rand.Reader, wire.FriendRequestSize)
		if err != nil {
			b.Fatal(err)
		}
		ctxts[i] = c
	}
	ctxts[mailboxSize-1], err = ibe.Encrypt(rand.Reader, pub, "bob@example.org", make([]byte, wire.FriendRequestSize))
	if err != nil {
		b.Fatal(err)
	}

	// The real scan path (core.Client.ScanAddFriendRound) precomputes the
	// key's Miller-loop ladder once per mailbox; mirror it here.
	key.Precompute()
	scan := func(b *testing.B, scanOnce func() int) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if found := scanOnce(); found != 1 {
				b.Fatalf("found %d of 1", found)
			}
		}
		perReq := b.Elapsed().Seconds() / float64(b.N) / mailboxSize
		b.ReportMetric(perReq, "sec/request")
		b.ReportMetric(24000*perReq/4, "proj-sec/24k-mailbox/4cores")
	}
	b.Run("batched", func(b *testing.B) {
		scan(b, func() int {
			found := 0
			_, oks := ibe.DecryptBatch(key, ctxts)
			for _, ok := range oks {
				if ok {
					found++
				}
			}
			return found
		})
	})
	b.Run("unbatched", func(b *testing.B) {
		scan(b, func() int {
			found := 0
			for _, c := range ctxts {
				if _, ok := ibe.Decrypt(key, c); ok {
					found++
				}
			}
			return found
		})
	})
}

// BenchmarkKeywheelAdvance is T2: the paper computes 1M keywheel hashes
// per second per core.
func BenchmarkKeywheelAdvance(b *testing.B) {
	var secret [keywheel.SecretSize]byte
	rand.Read(secret[:])
	w := keywheel.New(0, &secret)
	b.ResetTimer()
	if err := w.Advance(uint32(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hashes/sec")
}

// BenchmarkDialScan is T2's scan claim: 1000 friends x 10 intents against
// one round's Bloom filter in under a second.
func BenchmarkDialScan(b *testing.B) {
	const friends = 1000
	const intents = 10
	var secret [keywheel.SecretSize]byte
	rand.Read(secret[:])
	wheels := make([]*keywheel.Wheel, friends)
	for i := range wheels {
		wheels[i] = keywheel.New(0, &secret)
	}
	f := bloom.New(125000, bloom.DefaultBitsPerElement)
	tok, _ := wheels[7].DialToken(0, 3, "friend7")
	f.Add(tok[:])

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := 0
		for fi, w := range wheels {
			for intent := uint32(0); intent < intents; intent++ {
				tok, err := w.DialToken(0, intent, fmt.Sprintf("friend%d", fi))
				if err != nil {
					b.Fatal(err)
				}
				if f.Test(tok[:]) {
					hits++
				}
			}
		}
		if hits != 1 {
			b.Fatalf("hits = %d", hits)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "sec/full-scan")
}

// BenchmarkKeyExtraction is T3: client-side combined key extraction
// against 3 and 10 in-process PKGs (paper: 4.9 ms and 5.2 ms medians —
// network-latency dominated; ours measures the computation).
func BenchmarkKeyExtraction(b *testing.B) {
	for _, numPKGs := range []int{3, 10} {
		b.Run(fmt.Sprintf("pkgs=%d", numPKGs), func(b *testing.B) {
			net, err := sim.NewNetwork(sim.Config{NumPKGs: numPKGs, NumMixers: 1})
			if err != nil {
				b.Fatal(err)
			}
			h := &sim.Handler{AcceptAll: true}
			client, err := net.NewClient("bench@example.org", h)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round := uint32(i + 1)
				if _, err := net.Coord.OpenAddFriendRound(round); err != nil {
					b.Fatal(err)
				}
				// Submit includes extraction of all PKG key shares
				// plus attestation verification.
				if err := client.SubmitAddFriendRound(context.Background(), round); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPKGExtract is T4: server-side extraction throughput (paper:
// 4310 extractions/sec on 36 cores with assembly).
func BenchmarkPKGExtract(b *testing.B) {
	provider := emailpkg.NewInMemoryProvider()
	pkg, err := pkgserver.New(pkgserver.Config{Name: "p", Provider: provider})
	if err != nil {
		b.Fatal(err)
	}
	client, err := sim.RegisterDirect(pkg, provider, "user@example.org")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pkg.NewRound(1); err != nil {
		b.Fatal(err)
	}
	sig := client.SignExtract("user@example.org", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pkg.Extract("user@example.org", 1, sig); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "extractions/sec")
}

// ---- T5: message sizes ----

// TestPaperSizes records this implementation's message sizes next to the
// paper's (see EXPERIMENTS.md): the paper's friend request is 308 bytes
// (244 + 64-byte compressed BN-256 ciphertext element); ours is larger
// because BN254 points are stored uncompressed.
func TestPaperSizes(t *testing.T) {
	t.Logf("friend request plaintext:  %d B (paper: 244 B)", wire.FriendRequestSize)
	t.Logf("encrypted friend request:  %d B (paper: 308 B)", wire.EncryptedFriendRequestSize)
	t.Logf("IBE ciphertext overhead:   %d B (paper: 64 B)", ibe.Overhead)
	t.Logf("dial token:                %d B (paper: 32 B)", keywheel.TokenSize)
	t.Logf("add-friend onion (3 hops): %d B", wire.OnionSize(wire.AddFriend, 3))
	t.Logf("dialing onion (3 hops):    %d B", wire.OnionSize(wire.Dialing, 3))
	if wire.EncryptedFriendRequestSize < 244+ibe.Overhead {
		t.Fatal("request cannot be smaller than payload plus overhead")
	}
	if keywheel.TokenSize != 32 {
		t.Fatal("dial tokens must be 256 bits (paper §5)")
	}
}

// ---- T8/A1: IBE constructions ----

// BenchmarkAnytrustVsOnion is ablation A1: Anytrust-IBE (the paper's
// contribution) vs the naive onion construction it replaces (§4.2).
// Anytrust decryption time and ciphertext size are constant in the number
// of PKGs; onion grows linearly in both.
func BenchmarkAnytrustVsOnion(b *testing.B) {
	msg := make([]byte, 64)
	for _, n := range []int{1, 3, 10} {
		var pubs []*ibe.MasterPublicKey
		var privs []*ibe.MasterPrivateKey
		for i := 0; i < n; i++ {
			pub, priv, err := ibe.Setup(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			pubs = append(pubs, pub)
			privs = append(privs, priv)
		}
		var idKeys []*ibe.IdentityPrivateKey
		for _, priv := range privs {
			idKeys = append(idKeys, ibe.Extract(priv, "bob@x.org"))
		}

		b.Run(fmt.Sprintf("anytrust/pkgs=%d", n), func(b *testing.B) {
			agg := ibe.AggregateMasterKeys(pubs...)
			combined := ibe.AggregatePrivateKeys(idKeys...)
			ctxt, err := ibe.Encrypt(rand.Reader, agg, "bob@x.org", msg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ibe.Decrypt(combined, ctxt); !ok {
					b.Fatal("decrypt failed")
				}
			}
			b.ReportMetric(float64(len(ctxt)), "ctxt-bytes")
		})
		b.Run(fmt.Sprintf("onion/pkgs=%d", n), func(b *testing.B) {
			ctxt, err := ibe.OnionEncrypt(rand.Reader, pubs, "bob@x.org", msg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := ibe.OnionDecrypt(idKeys, ctxt); !ok {
					b.Fatal("decrypt failed")
				}
			}
			b.ReportMetric(float64(len(ctxt)), "ctxt-bytes")
		})
	}
}

// BenchmarkIBESweep is T8 (§8.6): how Alpenhorn's costs scale with the
// underlying IBE construction — encryption, extraction, decryption.
func BenchmarkIBESweep(b *testing.B) {
	pub, priv, err := ibe.Setup(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, wire.FriendRequestSize)
	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ibe.Encrypt(rand.Reader, pub, "bob@x.org", msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ibe.Extract(priv, "bob@x.org")
		}
	})
}

// ---- Parallel, pipelined round execution ----

// newBenchChain builds an n-server chain with the given decryption worker
// count, opens round 1, and returns the servers plus a wrapped dialing
// batch addressed round-robin to numMailboxes mailboxes.
func newBenchChain(b *testing.B, numServers, workers, batchSize int, numMailboxes uint32) ([]*mixnet.Server, [][]byte) {
	b.Helper()
	nz := noise.Laplace{Mu: 2, B: 0}
	servers := make([]*mixnet.Server, numServers)
	keys := make([][]byte, numServers)
	hops := make([]*onionbox.PublicKey, numServers)
	for i := range servers {
		m, err := mixnet.New(mixnet.Config{
			Name: "m", Position: i, ChainLength: numServers,
			AddFriendNoise: &nz, DialingNoise: &nz,
			Parallelism: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = m
		rk, err := m.NewRound(wire.Dialing, 1)
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = rk.OnionKey
		pk, err := onionbox.UnmarshalPublicKey(rk.OnionKey)
		if err != nil {
			b.Fatal(err)
		}
		hops[i] = pk
	}
	for i, m := range servers {
		if err := m.SetDownstreamKeys(wire.Dialing, 1, keys[i+1:]); err != nil {
			b.Fatal(err)
		}
	}
	batch := make([][]byte, batchSize)
	tok := make([]byte, keywheel.TokenSize)
	for i := range batch {
		tok[0], tok[1] = byte(i), byte(i>>8)
		payload := (&wire.MixPayload{Mailbox: uint32(i) % numMailboxes, Body: tok}).Marshal()
		onion, err := onionbox.WrapOnion(rand.Reader, hops, payload)
		if err != nil {
			b.Fatal(err)
		}
		batch[i] = onion
	}
	return servers, batch
}

// benchChain measures a full 3-server dialing round — peel, noise,
// shuffle, mailbox build — for one execution mode.
func benchChain(b *testing.B, workers int, pipelined bool) {
	const batchSize = 2048
	const numMailboxes = 4
	servers, batch := newBenchChain(b, 3, workers, batchSize, numMailboxes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pipelined {
			_, err = mixnet.ChainPipelined(servers, wire.Dialing, 1, numMailboxes, batch, 256)
		} else {
			_, err = mixnet.Chain(servers, wire.Dialing, 1, numMailboxes, batch)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	perRound := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(batchSize)/perRound, "msgs/sec")
	b.ReportMetric(perRound*1e3, "ms/round")
}

// BenchmarkMixSequential is the pre-refactor baseline: one decryption
// thread per server, strict stage-by-stage chain execution.
func BenchmarkMixSequential(b *testing.B) { benchChain(b, 1, false) }

// BenchmarkMixParallel uses the worker-pool decrypt path (GOMAXPROCS
// workers) with the chain still running stage by stage. Compare its
// msgs/sec against BenchmarkMixSequential for the multi-core speedup.
func BenchmarkMixParallel(b *testing.B) { benchChain(b, 0, false) }

// BenchmarkMixPipelined adds the streaming pipeline on top of parallel
// decryption: chunked hand-off between servers plus ahead-of-time noise.
func BenchmarkMixPipelined(b *testing.B) { benchChain(b, 0, true) }

// ---- A2: Bloom filter vs raw tokens ----

// BenchmarkBloomVsRaw is ablation A2 (§5.2): dialing mailbox size with and
// without the Bloom filter encoding.
func BenchmarkBloomVsRaw(b *testing.B) {
	for _, tokens := range []int{10000, 125000} {
		b.Run(fmt.Sprintf("tokens=%d", tokens), func(b *testing.B) {
			var f *bloom.Filter
			tok := make([]byte, keywheel.TokenSize)
			for i := 0; i < b.N; i++ {
				f = bloom.New(tokens, bloom.DefaultBitsPerElement)
				for j := 0; j < tokens; j++ {
					tok[0], tok[1], tok[2] = byte(j), byte(j>>8), byte(j>>16)
					f.Add(tok)
				}
			}
			bloomBytes := float64(f.SizeBytes())
			rawBytes := float64(tokens * keywheel.TokenSize)
			b.ReportMetric(bloomBytes/1e6, "bloom-MB")
			b.ReportMetric(rawBytes/bloomBytes, "savings-x")
		})
	}
}
